"""Tests for event sinks and the metrics registry (repro.obs.sinks)."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.events import TaskCompleted, TaskMapped, event_from_dict
from repro.obs.sinks import (
    DEPTH_EDGES,
    LATENCY_EDGES,
    Histogram,
    JsonlSink,
    MetricsRegistry,
    RingBufferSink,
)

EVENT = TaskCompleted(t=1.0, task_id=0, type_id=1, core_id=2)


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(EVENT)
            sink.emit(
                TaskMapped(
                    t=2.0, task_id=1, type_id=0, core_id=0, pstate=4,
                    energy_estimate=1.0, queue_depth=0.0,
                )
            )
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert sink.count == 2
        assert event_from_dict(json.loads(lines[0])) == EVENT

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(EVENT)
        assert path.exists()

    def test_borrowed_file_left_open(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with path.open("w") as fh:
            sink = JsonlSink(fh)
            sink.emit(EVENT)
            sink.close()
            assert not fh.closed


class TestJsonlSinkDurability:
    def test_flush_pushes_lines_without_closing(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit(EVENT)
        sink.flush()
        assert path.read_text().endswith("\n")
        sink.emit(EVENT)
        sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_close_flushes_borrowed_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with path.open("w") as fh:  # block-buffered: lines sit in memory
            sink = JsonlSink(fh)
            sink.emit(EVENT)
            sink.close()
            assert not fh.closed
            assert path.read_text().count("\n") == 1

    def test_crashed_writer_leaves_only_whole_lines(self, tmp_path):
        # Regression: a worker that dies mid-trial (os._exit skips every
        # atexit/__exit__ path) must leave a parseable trace prefix, not
        # a file ending in half a JSON object.
        import os

        from repro.io.trace_io import load_trace

        path = tmp_path / "crash.jsonl"
        pid = os.fork()
        if pid == 0:  # child: write a burst of events, die without close
            sink = JsonlSink(path)
            for i in range(200):
                sink.emit(
                    TaskCompleted(t=float(i), task_id=i, type_id=0, core_id=0)
                )
            os._exit(17)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 17
        raw = path.read_text()
        assert raw.endswith("\n")
        lines = raw.splitlines()
        for line in lines:  # every surviving line is a complete object
            json.loads(line)
        events = load_trace(path)
        assert len(events) == 200  # line-buffered: nothing was lost
        assert [e.task_id for e in events] == list(range(200))


class TestRingBufferSink:
    def test_keeps_most_recent(self):
        ring = RingBufferSink(capacity=3)
        for i in range(10):
            ring.emit(TaskCompleted(t=float(i), task_id=i, type_id=0, core_id=0))
        assert len(ring) == 3
        assert ring.total_emitted == 10
        assert [e.task_id for e in ring.events] == [7, 8, 9]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_iterates_oldest_first(self):
        ring = RingBufferSink(capacity=4)
        for i in range(4):
            ring.emit(TaskCompleted(t=float(i), task_id=i, type_id=0, core_id=0))
        assert [e.task_id for e in ring] == [0, 1, 2, 3]


class TestHistogram:
    def test_bucketing_and_overflow(self):
        hist = Histogram(edges=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 1]
        assert hist.count == 4
        assert hist.min == 0.5 and hist.max == 100.0
        assert math.isclose(hist.mean(), (0.5 + 1.5 + 3.0 + 100.0) / 4)

    def test_empty_mean_is_nan(self):
        assert math.isnan(Histogram(edges=(1.0,)).mean())

    def test_merge_adds_elementwise(self):
        a = Histogram(edges=(1.0, 2.0))
        b = Histogram(edges=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(10.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.min == 0.5 and a.max == 10.0

    def test_merge_rejects_mismatched_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=(1.0,)).merge(Histogram(edges=(2.0,)))

    def test_dict_round_trip_including_empty(self):
        hist = Histogram(edges=(1.0, 2.0))
        assert Histogram.from_dict(hist.to_dict()).counts == hist.counts
        hist.observe(1.5)
        back = Histogram.from_dict(hist.to_dict())
        assert back.counts == hist.counts
        assert back.count == hist.count
        assert back.min == hist.min and back.max == hist.max

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=(2.0, 1.0))

    def test_default_edges_strictly_increasing(self):
        for edges in (LATENCY_EDGES, DEPTH_EDGES):
            assert all(b > a for a, b in zip(edges, edges[1:]))


class TestMetricsRegistry:
    def test_counters(self):
        reg = MetricsRegistry()
        reg.inc("tasks_mapped")
        reg.inc("tasks_mapped", 4)
        assert reg.counter("tasks_mapped") == 5
        assert reg.counter("never_touched") == 0

    def test_counters_with_prefix(self):
        reg = MetricsRegistry()
        reg.inc("tasks_discarded.empty_feasible_set", 2)
        reg.inc("tasks_discarded.cancelled")
        reg.inc("tasks_mapped")
        assert reg.counters_with_prefix("tasks_discarded.") == {
            "empty_feasible_set": 2,
            "cancelled": 1,
        }

    def test_observe_creates_histogram_once(self):
        reg = MetricsRegistry()
        reg.observe("queue_depth", 0.3, DEPTH_EDGES)
        reg.observe("queue_depth", 5.0, DEPTH_EDGES)
        assert reg.histograms["queue_depth"].count == 2

    def test_merge_is_commutative_on_totals(self):
        def build(values):
            reg = MetricsRegistry()
            for v in values:
                reg.inc("n")
                reg.observe("h", v, (1.0, 2.0))
            return reg

        ab = build([0.5, 1.5])
        ab.merge(build([3.0]))
        ba = build([3.0])
        ba.merge(build([0.5, 1.5]))
        assert ab.counters == ba.counters
        assert ab.histograms["h"].counts == ba.histograms["h"].counts

    def test_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("a", 3)
        reg.observe("h", 0.1, (1.0,))
        back = MetricsRegistry.from_dict(reg.to_dict())
        assert back.counters == reg.counters
        assert back.histograms["h"].counts == reg.histograms["h"].counts

    def test_from_dict_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_dict({"format": "something/else"})
