"""Tests for the live telemetry layer (repro.obs.telemetry + export).

Instruments, the SLO rule grammar and streak machine, the Telemetry hub,
the inert NULL_TELEMETRY, and the export surfaces (Prometheus text,
atomic file, HTTP scrape endpoint).
"""

from __future__ import annotations

import json
import math
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs.events import AlertFired, AlertResolved
from repro.obs.export import (
    CONTENT_TYPE,
    FileExporter,
    TelemetryServer,
    to_prometheus,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    AlertRule,
    Counter,
    Ewma,
    EwmaRate,
    Gauge,
    NullTelemetry,
    P2Quantile,
    QuantileSet,
    Telemetry,
    parse_rule,
)
from repro.sim.metrics import WindowStats


def window(index: int, *, on_time: int = 8, late: int = 2, **overrides) -> WindowStats:
    """A plausible closed window for feeding Telemetry.on_window."""
    fields = {
        "start": 10.0 * index,
        "end": 10.0 * (index + 1),
        "mapped": on_time + late,
        "discarded": 0,
        "completed": on_time + late,
        "on_time": on_time,
        "late": late,
        "energy": 500.0,
        "in_system_end": 3,
    }
    fields.update(overrides)
    return WindowStats(**fields)


class TestInstruments:
    def test_counter_goes_up_and_only_up(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_gauge_is_nan_until_set(self):
        g = Gauge()
        assert math.isnan(g.value)
        g.set(2)
        assert g.value == 2.0

    @pytest.mark.parametrize("cls", [Ewma, EwmaRate])
    def test_nonpositive_tau_rejected(self, cls):
        with pytest.raises(ValueError, match="tau"):
            cls(0.0)

    def test_ewma_first_observation_is_exact(self):
        e = Ewma(tau=5.0)
        assert math.isnan(e.value)
        e.observe(0.0, 3.0)
        assert e.value == 3.0

    def test_ewma_converges_to_constant_feed(self):
        e = Ewma(tau=2.0)
        for i in range(200):
            e.observe(float(i), 7.0)
        assert e.value == pytest.approx(7.0)

    def test_ewma_long_gap_forgets_the_past(self):
        e = Ewma(tau=1.0)
        e.observe(0.0, 100.0)
        e.observe(1000.0, 0.0)  # ~1000 time constants later
        assert e.value == pytest.approx(0.0, abs=1e-9)

    def test_ewma_rate_converges_to_true_rate(self):
        # Events every 0.5 s -> rate 2/s; tau large enough to smooth.
        r = EwmaRate(tau=20.0)
        for i in range(1000):
            r.observe(0.5 * i)
        assert r.rate() == pytest.approx(2.0, rel=0.05)

    def test_ewma_rate_decays_when_read_later(self):
        r = EwmaRate(tau=1.0)
        r.observe(0.0)
        now = r.rate(0.0)
        later = r.rate(10.0)
        assert later < now / 1000.0
        assert r.rate() == now  # reading never mutates

    def test_ewma_rate_empty_is_zero(self):
        assert EwmaRate(tau=1.0).rate() == 0.0


class TestP2Quantile:
    def test_q_out_of_range_rejected(self):
        for q in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError, match="q must be"):
                P2Quantile(q)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9, 0.99])
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_small_n_matches_numpy_exactly(self, q, n):
        rng = np.random.default_rng(42 + n)
        xs = rng.normal(10.0, 2.0, size=n)
        est = P2Quantile(q)
        for x in xs:
            est.observe(x)
        assert est.value == float(np.quantile(xs, q, method="linear"))

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_large_n_tracks_smooth_distribution(self, q):
        rng = np.random.default_rng(7)
        xs = rng.normal(10.0, 2.0, size=5000)
        est = P2Quantile(q)
        for x in xs:
            est.observe(x)
        exact = float(np.quantile(xs, q))
        assert est.value == pytest.approx(exact, abs=0.15)

    def test_estimate_stays_within_observed_range(self):
        rng = np.random.default_rng(3)
        xs = rng.exponential(5.0, size=400)
        est = P2Quantile(0.9)
        for x in xs:
            est.observe(x)
        assert xs.min() <= est.value <= xs.max()

    def test_constant_stream_is_exact(self):
        est = P2Quantile(0.5)
        for _ in range(50):
            est.observe(4.0)
        assert est.value == 4.0


class TestQuantileSet:
    def test_needs_at_least_one_quantile(self):
        with pytest.raises(ValueError, match="at least one"):
            QuantileSet(())

    def test_empty_reads_are_nan(self):
        qs = QuantileSet()
        assert math.isnan(qs.mean)
        assert math.isnan(qs.min)
        assert math.isnan(qs.max)
        assert all(math.isnan(v) for v in qs.values().values())

    def test_tracks_count_sum_extremes(self):
        qs = QuantileSet((0.5,))
        for x in (3.0, 1.0, 2.0):
            qs.observe(x)
        assert qs.count == 3
        assert qs.total == 6.0
        assert qs.mean == 2.0
        assert (qs.min, qs.max) == (1.0, 3.0)
        assert qs.values() == {0.5: 2.0}


class TestRuleGrammar:
    @pytest.mark.parametrize(
        "spec,metric,op,threshold,held",
        [
            ("on_time_prob<0.9", "on_time_prob", "<", 0.9, 1),
            ("on_time_prob<0.9:3", "on_time_prob", "<", 0.9, 3),
            ("burn_rate>=1.5:2", "burn_rate", ">=", 1.5, 2),
            ("queue_depth>10", "queue_depth", ">", 10.0, 1),
            ("budget_remaining<=0", "budget_remaining", "<=", 0.0, 1),
        ],
    )
    def test_parse_round_trips_through_spec(self, spec, metric, op, threshold, held):
        rule = parse_rule(spec)
        assert (rule.metric, rule.op, rule.threshold, rule.for_windows) == (
            metric, op, threshold, held,
        )
        assert parse_rule(rule.spec) == rule

    @pytest.mark.parametrize(
        "spec,message",
        [
            ("on_time_prob", "no comparison"),
            ("<0.9", "malformed"),
            ("on_time_prob<", "malformed"),
            ("on_time_prob<ninety", "bad threshold"),
            ("on_time_prob<0.9:soon", "bad window count"),
        ],
    )
    def test_bad_specs_rejected(self, spec, message):
        with pytest.raises(ValueError, match=message):
            parse_rule(spec)

    def test_rule_validates_op_and_windows(self):
        with pytest.raises(ValueError, match="unknown operator"):
            AlertRule(metric="x", op="==", threshold=1.0)
        with pytest.raises(ValueError, match="for_windows"):
            AlertRule(metric="x", op="<", threshold=1.0, for_windows=0)

    def test_breached_semantics(self):
        rule = parse_rule("on_time_prob<0.9")
        assert rule.breached({"on_time_prob": 0.5})
        assert not rule.breached({"on_time_prob": 0.95})
        # nan (no completions) and missing metrics never breach.
        assert not rule.breached({"on_time_prob": math.nan})
        assert not rule.breached({})


class ListSink:
    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


class TestTelemetryHub:
    def test_feeds_update_counters_and_streams(self):
        tele = Telemetry()
        tele.configure(window=10.0)
        tele.on_mapped(1.0, queue_depth=0.5)
        tele.on_completion(2.0, latency=1.0, on_time=True)
        tele.on_completion(3.0, latency=2.5, on_time=False)
        tele.on_discarded(4.0)
        tele.on_shed(5.0, deferred=False)
        tele.on_shed(6.0, deferred=True)
        counts = {k: c.value for k, c in tele.counters.items()}
        assert counts == {
            "tasks_mapped": 1,
            "tasks_completed": 2,
            "tasks_on_time": 1,
            "tasks_late": 1,
            "tasks_discarded": 1,
            "tasks_shed": 1,
            "tasks_deferred": 1,
            "windows": 0,
        }
        assert tele.latency.count == 2
        assert tele.latency.total == 3.5
        assert tele.queue_depth.count == 1

    def test_window_close_sets_gauges_and_history(self):
        tele = Telemetry()
        tele.configure(window=10.0, budget_rate=100.0)
        tele.on_window(window(0, energy=500.0))
        assert tele.counters["windows"].value == 1
        assert tele.gauges["window_on_time_prob"].value == pytest.approx(0.8)
        assert tele.gauges["window_energy_joules"].value == 500.0
        assert tele.gauges["in_system"].value == 3.0
        # 500 J consumed over a 1000 J allowance (100 W * 10 s) = 0.5.
        assert tele.gauges["burn_rate"].value == pytest.approx(0.5)
        assert len(tele.history) == 1
        assert tele.history[0]["on_time_prob"] == pytest.approx(0.8)

    def test_history_cap_drops_and_counts(self):
        tele = Telemetry(history_cap=8)
        tele.configure(window=10.0)
        for i in range(11):
            tele.on_window(window(i))
        assert len(tele.history) == 8
        assert tele.history_dropped == 3
        assert tele.snapshot()["history_dropped"] == 3

    def test_history_cap_too_small_rejected(self):
        with pytest.raises(ValueError, match="history_cap"):
            Telemetry(history_cap=2)

    def test_rule_fires_after_streak_and_resolves(self):
        sink = ListSink()
        tele = Telemetry(rules=["on_time_prob<0.75:2"], sinks=[sink])
        tele.configure(window=10.0)
        tele.on_window(window(0, on_time=5, late=5))  # breach 1: not firing yet
        assert not tele.firing
        tele.on_window(window(1, on_time=5, late=5))  # breach 2: fires
        assert [s.rule.spec for s in tele.firing] == ["on_time_prob<0.75:2"]
        assert not tele.health()["healthy"]
        tele.on_window(window(2, on_time=10, late=0))  # recovery resolves
        assert not tele.firing
        assert tele.health()["healthy"]
        kinds = [type(e) for e in sink.events]
        assert kinds == [AlertFired, AlertResolved]
        fired = sink.events[0]
        assert fired.rule == "on_time_prob<0.75:2"
        assert fired.window_index == 1
        assert fired.value == pytest.approx(0.5)
        assert sink.events[1].window_index == 2

    def test_nan_metric_never_breaches(self):
        tele = Telemetry(rules=["on_time_prob<0.9"])
        tele.configure(window=10.0)
        # No completions: on_time_prob is nan, which must not breach.
        tele.on_window(window(0, mapped=0, completed=0, on_time=0, late=0))
        assert not tele.firing
        assert tele.rule_states[0].breached_windows == 0

    def test_steady_state_appears_after_enough_windows(self):
        tele = Telemetry()
        tele.configure(window=10.0)
        assert tele.steady_state() == {}
        for i in range(30):
            tele.on_window(window(i))
        steady = tele.steady_state()
        assert set(steady) == {"on_time_prob", "throughput", "power"}
        # A flat series converges with mean at the per-window value.
        assert steady["power"].mean == pytest.approx(50.0)
        assert steady["power"].converged

    def test_exporters_run_on_window_close(self, tmp_path):
        tele = Telemetry()
        tele.configure(window=10.0)
        out = tmp_path / "tele.prom"
        exporter = FileExporter(out, tele)
        tele.exporters.append(exporter)
        tele.on_window(window(0))
        assert exporter.exports == 1
        assert "repro_windows_total 1" in out.read_text()

    def test_snapshot_is_json_serializable(self):
        tele = Telemetry(rules=["queue_depth>100"])
        tele.configure(window=10.0)
        tele.on_completion(1.0, latency=0.5, on_time=True)
        for i in range(12):
            tele.on_window(window(i))
        doc = json.loads(json.dumps(tele.snapshot(), allow_nan=True))
        assert doc["counters"]["windows"] == 12
        assert doc["health"]["healthy"] is True


class TestNullTelemetry:
    def test_singleton_is_inert(self):
        assert NULL_TELEMETRY.enabled is False
        assert isinstance(NULL_TELEMETRY, NullTelemetry)
        assert Telemetry.enabled is True

    def test_feeds_are_no_ops_without_state(self):
        NULL_TELEMETRY.configure(window=5.0)
        NULL_TELEMETRY.on_mapped(1.0, queue_depth=0.5)
        NULL_TELEMETRY.on_completion(2.0, latency=1.0, on_time=True)
        NULL_TELEMETRY.on_discarded(3.0)
        NULL_TELEMETRY.on_shed(4.0, deferred=False)
        NULL_TELEMETRY.on_window(window(0))
        # The null hub deliberately allocates no instrument state at all.
        assert not hasattr(NULL_TELEMETRY, "counters")
        assert not hasattr(NULL_TELEMETRY, "history")


class TestPrometheusRendering:
    @pytest.fixture()
    def tele(self) -> Telemetry:
        tele = Telemetry(rules=['on_time_prob<0.75:2'])
        tele.configure(window=10.0, budget_rate=100.0)
        for i in range(12):
            tele.on_completion(10.0 * i + 1.0, latency=1.0 + 0.1 * i, on_time=True)
            tele.on_mapped(10.0 * i + 0.5, queue_depth=float(i % 3))
            tele.on_window(window(i))
        return tele

    def test_required_families_present(self, tele):
        text = tele.render_prometheus()
        for family in (
            "repro_windows_total",
            "repro_tasks_completed_total",
            "repro_tasks_mapped_total",
            "repro_completion_latency_seconds",
            "repro_warmup_window_index",
            "repro_steady_ci_half_width",
            "repro_healthy",
            "repro_slo_firing",
            "repro_burn_rate",
        ):
            assert f"# TYPE {family} " in text, family

    def test_fresh_hub_still_renders_steady_families(self):
        # A scrape can land before the first window closes; the steady
        # families must already be present (warm-up 0, NaN mean) so the
        # exposed family set is stable over the life of the endpoint.
        text = Telemetry().render_prometheus()
        assert '# TYPE repro_warmup_window_index gauge' in text
        assert 'repro_warmup_window_index{metric="on_time_prob"} 0' in text
        assert 'repro_steady_mean{metric="throughput"} NaN' in text
        assert 'repro_steady_ci_half_width{metric="power"} NaN' in text
        assert 'repro_steady_converged{metric="on_time_prob"} 0' in text

    def test_summary_carries_quantiles_sum_count(self, tele):
        text = tele.render_prometheus()
        assert 'repro_completion_latency_seconds{quantile="0.5"}' in text
        assert 'repro_completion_latency_seconds{quantile="0.99"}' in text
        assert "repro_completion_latency_seconds_count 12" in text
        assert "repro_completion_latency_seconds_sum " in text

    def test_counter_values_render_bare(self, tele):
        text = tele.render_prometheus()
        assert "repro_tasks_completed_total 12" in text
        assert "repro_tasks_on_time_total 12" in text
        assert "repro_tasks_late_total 0" in text

    def test_nan_gauge_renders_as_NaN(self):
        tele = Telemetry()
        text = tele.render_prometheus()
        assert "repro_budget_remaining NaN" in text

    def test_rule_label_is_escaped(self):
        snapshot = {
            "health": {
                "healthy": True,
                "rules": [{"rule": 'odd"rule\\name', "firing": False}],
            }
        }
        text = to_prometheus(snapshot)
        assert 'repro_slo_firing{rule="odd\\"rule\\\\name"} 0' in text

    def test_every_line_is_comment_or_sample(self, tele):
        for line in tele.render_prometheus().splitlines():
            assert line.startswith("#") or " " in line


class TestFileExporter:
    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        tele = Telemetry()
        out = tmp_path / "metrics.prom"
        exporter = FileExporter(out, tele)
        exporter.export()
        exporter.export()
        assert exporter.exports == 2
        assert "repro_windows_total 0" in out.read_text()
        assert not (tmp_path / "metrics.prom.tmp").exists()


class TestTelemetryServer:
    @pytest.fixture()
    def tele(self) -> Telemetry:
        tele = Telemetry(rules=["queue_depth>4:1"])
        tele.configure(window=10.0)
        tele.on_window(window(0))
        return tele

    def test_scrape_metrics_and_content_type(self, tele):
        with TelemetryServer(tele, port=0) as server:
            with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == CONTENT_TYPE
                body = resp.read().decode("utf-8")
        assert "repro_windows_total 1" in body

    def test_health_flips_to_503_while_firing(self, tele):
        with TelemetryServer(tele, port=0) as server:
            with urllib.request.urlopen(f"{server.url}/health", timeout=5) as resp:
                assert resp.status == 200
                assert json.loads(resp.read())["healthy"] is True
            # queue_depth (in_system_end) of 5 breaches `queue_depth>4`.
            tele.on_window(window(1, in_system_end=5))
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{server.url}/health", timeout=5)
            assert err.value.code == 503
            assert json.loads(err.value.read())["healthy"] is False

    def test_unknown_path_is_404(self, tele):
        with TelemetryServer(tele, port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{server.url}/nope", timeout=5)
            assert err.value.code == 404

    def test_double_start_rejected_and_stop_is_idempotent(self, tele):
        server = TelemetryServer(tele, port=0)
        server.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()
        finally:
            server.stop()
        server.stop()  # second stop is a no-op
