"""Property suite: every representable scenario survives the round trip.

The generator draws from the whole declarative surface — policy spelling
(any case), seed / task-count overrides, config sections, run modes,
ensemble settings, fault layers (episode lists and renewal generators),
and shedding thresholds — and asserts that serialize-then-parse is the
identity and the digest is stable, through the dict form and through
real ``.toml`` / ``.json`` files.
"""

from __future__ import annotations

import tomllib

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultEvent, SheddingConfig
from repro.registry import HEURISTIC_PLUGINS
from repro.scenario import EnsembleSettings, FaultSettings, Scenario
from tests.conftest import tiny_config


def _any_case(name: str) -> st.SearchStrategy[str]:
    return st.sampled_from([name, name.lower(), name.upper()])


heuristics = st.sampled_from(HEURISTIC_PLUGINS.names()).flatmap(_any_case)
variants = st.sampled_from(["none", "en", "rob", "en+rob", "rob+en"]).flatmap(_any_case)

fault_events = st.sampled_from(
    ["node_outage", "core_outage", "node_slowdown"]
).flatmap(
    lambda kind: st.builds(
        FaultEvent,
        kind=st.just(kind),
        target=st.integers(min_value=0, max_value=2),
        start=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, width=32),
        duration=st.floats(min_value=1.0, max_value=500.0, allow_nan=False, width=32),
        pstate_floor=(
            st.integers(min_value=0, max_value=3)
            if kind == "node_slowdown"
            else st.just(0)
        ),
    )
)

fault_settings = st.one_of(
    st.builds(
        FaultSettings,
        events=st.lists(fault_events, min_size=1, max_size=3).map(tuple),
        running=st.sampled_from(["lost", "resume"]),
        remap=st.booleans(),
    ),
    st.builds(
        FaultSettings,
        mtbf=st.floats(min_value=100.0, max_value=1e5, allow_nan=False, width=32),
        mttr=st.floats(min_value=10.0, max_value=1e4, allow_nan=False, width=32),
        horizon=st.floats(min_value=100.0, max_value=1e5, allow_nan=False, width=32),
        num_targets=st.none() | st.integers(min_value=1, max_value=4),
        scope=st.sampled_from(["node", "core", "slowdown"]),
        seed=st.none() | st.integers(min_value=0, max_value=2**31),
        running=st.sampled_from(["lost", "resume"]),
    ),
)

shedding_configs = st.builds(
    SheddingConfig,
    queue_depth=st.none() | st.floats(min_value=0.5, max_value=50.0, allow_nan=False, width=32),
    defer=st.none() | st.floats(min_value=1.0, max_value=600.0, allow_nan=False, width=32),
    max_defers=st.integers(min_value=0, max_value=5),
)

ensembles = st.builds(
    EnsembleSettings,
    num_trials=st.integers(min_value=1, max_value=50),
    base_seed=st.none() | st.integers(min_value=0, max_value=2**31),
    n_jobs=st.integers(min_value=1, max_value=8),
)


@st.composite
def scenarios(draw) -> Scenario:
    mode = draw(st.sampled_from(["trial", "ensemble", "service"]))
    kwargs = {
        "heuristic": draw(heuristics),
        "filters": draw(variants),
        "seed": draw(st.none() | st.integers(min_value=0, max_value=2**31)),
        "num_tasks": draw(st.none() | st.integers(min_value=1, max_value=2000)),
        "config": draw(st.none() | st.just(tiny_config(seed=draw(st.integers(0, 99))))),
        "name": draw(st.sampled_from(["", "prop-test", 'quo"ted', "back\\slash"])),
        "mode": mode,
    }
    if mode == "ensemble":
        kwargs["ensemble"] = draw(st.none() | ensembles)
    else:
        if draw(st.booleans()):
            kwargs["faults"] = draw(fault_settings)
        kwargs["shedding"] = draw(st.none() | shedding_configs)
    return Scenario(**kwargs)


@given(scenarios())
@settings(max_examples=60, deadline=None)
def test_dict_round_trip_is_identity(scenario):
    assert Scenario.from_dict(scenario.to_dict()) == scenario


@given(scenarios())
@settings(max_examples=60, deadline=None)
def test_toml_text_round_trip(scenario):
    parsed = Scenario.from_dict(tomllib.loads(scenario.to_toml()))
    assert parsed == scenario
    assert parsed.digest() == scenario.digest()


@given(scenario=scenarios())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_file_round_trip_both_formats(scenario, tmp_path):
    via_toml = Scenario.from_file(scenario.to_file(tmp_path / "s.toml"))
    via_json = Scenario.from_file(scenario.to_file(tmp_path / "s.json"))
    assert via_toml == scenario
    assert via_json == scenario
    assert via_toml.digest() == via_json.digest() == scenario.digest()


@given(scenarios())
@settings(max_examples=40, deadline=None)
def test_digest_depends_only_on_content(scenario):
    clone = Scenario.from_dict(scenario.to_dict())
    assert clone.digest() == scenario.digest()
    assert clone.to_toml() == scenario.to_toml()
