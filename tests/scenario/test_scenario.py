"""Scenario construction, validation, serialization, and resolution."""

from __future__ import annotations

import json
import tomllib

import pytest

from repro.config import LambdaMode, SimulationConfig
from repro.faults import FaultEvent, SheddingConfig
from repro.scenario import (
    MODES,
    SCENARIO_FORMAT,
    EnsembleSettings,
    FaultSettings,
    Scenario,
    ScenarioError,
)
from repro.service import ServiceConfig
from tests.conftest import tiny_config


class TestConstruction:
    def test_defaults(self):
        scenario = Scenario()
        assert scenario.heuristic == "LL"
        assert scenario.filters == "en+rob"
        assert scenario.mode == "trial"
        assert scenario.label == "LL/en+rob"

    def test_policy_names_canonicalized(self):
        scenario = Scenario("mect", "EN+ROB", mode="Trial")
        assert scenario.heuristic == "MECT"
        assert scenario.filters == "en+rob"
        assert scenario.mode == "trial"

    def test_unknown_heuristic(self):
        with pytest.raises(ValueError, match="heuristic"):
            Scenario(heuristic="OLB")

    def test_unknown_filter_variant(self):
        with pytest.raises(ValueError, match="filter"):
            Scenario(filters="fast+rob")

    def test_unknown_mode_did_you_mean(self):
        with pytest.raises(ValueError, match="did you mean 'ensemble'"):
            Scenario(mode="ensembel")

    def test_service_must_not_embed_fault_layer(self):
        service = ServiceConfig(traffic="replay", shedding=SheddingConfig(queue_depth=4.0))
        with pytest.raises(ValueError, match="scenario-level"):
            Scenario(mode="service", service=service)

    def test_ensemble_rejects_faults_and_shedding(self):
        faults = FaultSettings(mtbf=1000.0, mttr=100.0, horizon=5000.0)
        with pytest.raises(ValueError, match="not ensembles"):
            Scenario(mode="ensemble", faults=faults)
        with pytest.raises(ValueError, match="not ensembles"):
            Scenario(mode="ensemble", shedding=SheddingConfig(queue_depth=4.0))
        # An inactive fault section is fine (it produces no schedule).
        Scenario(mode="ensemble", faults=FaultSettings())

    def test_resolved_config_overrides(self):
        base = tiny_config(seed=5)
        scenario = Scenario(seed=9, num_tasks=40, config=base)
        resolved = scenario.resolved_config()
        assert resolved.seed == 9
        assert resolved.workload.num_tasks == 40
        # The base object is untouched.
        assert base.seed == 5 and base.workload.num_tasks == 60

    def test_resolved_config_defaults_to_paper(self):
        assert Scenario().resolved_config() == SimulationConfig()


class TestFaultSettings:
    def test_scope_did_you_mean(self):
        with pytest.raises(ValueError, match="did you mean 'node'"):
            FaultSettings(scope="nodes")

    def test_running_policy_validated(self):
        with pytest.raises(ValueError, match="'lost' or 'resume'"):
            FaultSettings(running="pause")

    def test_generator_trio_all_or_none(self):
        with pytest.raises(ValueError, match="mtbf, mttr and horizon"):
            FaultSettings(mtbf=1000.0)

    def test_events_and_generator_exclusive(self):
        event = FaultEvent("node_outage", 0, 10.0, 5.0)
        with pytest.raises(ValueError, match="not both"):
            FaultSettings(mtbf=1.0, mttr=1.0, horizon=1.0, events=(event,))

    def test_inactive_resolves_to_nothing(self):
        assert FaultSettings().resolve(tiny_config()) == (None, None)
        assert Scenario().resolved_faults() == (None, None)

    def test_explicit_events_resolve_verbatim(self):
        event = FaultEvent("node_outage", 1, 10.0, 5.0)
        settings = FaultSettings(events=(event,), running="resume", remap=False)
        schedule, policy = settings.resolve(tiny_config())
        assert schedule.events == (event,)
        assert policy.running == "resume" and policy.remap is False

    def test_generator_defaults_to_config_seed_and_nodes(self):
        config = tiny_config(seed=42)
        settings = FaultSettings(mtbf=500.0, mttr=50.0, horizon=2000.0)
        schedule, _ = settings.resolve(config)
        again, _ = settings.resolve(config)
        assert schedule.events == again.events  # deterministic given config
        # All targets drawn from the config's node count.
        assert all(e.target < config.cluster.num_nodes for e in schedule.events)
        # A different master seed draws a different schedule.
        other, _ = settings.resolve(tiny_config(seed=43))
        assert other.events != schedule.events
        # An explicit fault seed pins the schedule across config seeds.
        pinned = FaultSettings(mtbf=500.0, mttr=50.0, horizon=2000.0, seed=7)
        a, _ = pinned.resolve(tiny_config(seed=42))
        b, _ = pinned.resolve(tiny_config(seed=43))
        assert a.events == b.events


class TestResolvedService:
    def test_trial_scenario_defaults_to_replay(self):
        service = Scenario().resolved_service()
        assert service.traffic == "replay"
        assert service.faults is None and service.shedding is None

    def test_scenario_shedding_folds_into_service(self):
        shedding = SheddingConfig(queue_depth=4.0)
        scenario = Scenario(
            mode="service",
            service=ServiceConfig(traffic="poisson", task_limit=100),
            shedding=shedding,
        )
        resolved = scenario.resolved_service()
        assert resolved.traffic == "poisson"
        assert resolved.shedding == shedding

    def test_scenario_faults_fold_into_service(self):
        event = FaultEvent("node_outage", 0, 10.0, 5.0)
        scenario = Scenario(faults=FaultSettings(events=(event,)))
        resolved = scenario.resolved_service()
        assert resolved.faults.events == (event,)
        assert resolved.fault_policy.running == "lost"

    def test_resolved_ensemble_defaults(self):
        assert Scenario().resolved_ensemble() == EnsembleSettings()
        custom = EnsembleSettings(num_trials=4, n_jobs=2)
        assert Scenario(mode="ensemble", ensemble=custom).resolved_ensemble() is custom


class TestFromDict:
    def test_unknown_top_level_key(self):
        with pytest.raises(ScenarioError, match="did you mean 'policy'"):
            Scenario.from_dict({"polcy": {}})

    def test_unknown_policy_key(self):
        with pytest.raises(ScenarioError, match=r"\[policy\]"):
            Scenario.from_dict({"policy": {"heristic": "LL"}})

    def test_unknown_sim_section(self):
        with pytest.raises(ScenarioError, match="did you mean 'workload'"):
            Scenario.from_dict({"sim": {"worload": {}}})

    def test_unknown_nested_key_did_you_mean(self):
        with pytest.raises(ScenarioError, match="did you mean 'num_tasks'"):
            Scenario.from_dict({"sim": {"workload": {"num_taks": 100}}})

    def test_unknown_format_rejected(self):
        with pytest.raises(ScenarioError, match="unsupported scenario format"):
            Scenario.from_dict({"format": "repro.scenario/999"})

    def test_enum_values_coerced(self):
        scenario = Scenario.from_dict(
            {"sim": {"workload": {"lambda_mode": "paper"}}}
        )
        assert scenario.config.workload.lambda_mode is LambdaMode("paper")
        with pytest.raises(ScenarioError, match="bad value 'sometimes'"):
            Scenario.from_dict({"sim": {"workload": {"lambda_mode": "sometimes"}}})

    def test_bad_section_values_wrapped(self):
        with pytest.raises(ScenarioError, match=r"invalid \[ensemble\]"):
            Scenario.from_dict({"ensemble": {"num_trials": 0}})
        with pytest.raises(ScenarioError, match="table"):
            Scenario.from_dict({"policy": "LL"})

    def test_fault_events_parsed(self):
        scenario = Scenario.from_dict(
            {
                "faults": {
                    "events": [
                        {"kind": "node_outage", "target": 0, "start": 5.0, "duration": 2.0}
                    ],
                    "running": "resume",
                }
            }
        )
        assert scenario.faults.events == (FaultEvent("node_outage", 0, 5.0, 2.0),)
        assert scenario.faults.running == "resume"


class TestRoundTrip:
    def rich(self) -> Scenario:
        return Scenario(
            "mect",
            "EN+ROB",
            seed=9,
            num_tasks=80,
            config=tiny_config(seed=9),
            name="rich",
            mode="service",
            service=ServiceConfig(traffic="poisson", rate_mult=1.5, task_limit=120),
            faults=FaultSettings(events=(FaultEvent("node_outage", 0, 10.0, 5.0),)),
            shedding=SheddingConfig(queue_depth=4.0, defer=30.0),
        )

    def test_dict_round_trip(self):
        scenario = self.rich()
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_toml_round_trip_and_digest(self, tmp_path):
        scenario = self.rich()
        path = scenario.to_file(tmp_path / "rich.toml")
        loaded = Scenario.from_file(path)
        assert loaded == scenario
        assert loaded.digest() == scenario.digest()

    def test_json_round_trip_matches_toml(self, tmp_path):
        scenario = self.rich()
        via_json = Scenario.from_file(scenario.to_file(tmp_path / "rich.json"))
        via_toml = Scenario.from_file(scenario.to_file(tmp_path / "rich.toml"))
        assert via_json == via_toml == scenario
        assert via_json.digest() == via_toml.digest()

    def test_serialization_is_sparse(self):
        data = Scenario(name="sparse").to_dict()
        assert data == {
            "format": SCENARIO_FORMAT,
            "name": "sparse",
            "mode": "trial",
            "policy": {"heuristic": "LL", "filters": "en+rob"},
        }
        # A default-valued config section collapses away entirely.
        toml_text = Scenario(seed=3).to_toml()
        assert tomllib.loads(toml_text) == {
            "format": SCENARIO_FORMAT,
            "mode": "trial",
            "seed": 3,
            "policy": {"heuristic": "LL", "filters": "en+rob"},
        }

    def test_digest_ignores_spelling_not_content(self):
        assert Scenario("mect").digest() == Scenario("MECT").digest()
        assert Scenario("MECT").digest() != Scenario("LL").digest()

    def test_to_json_parses(self):
        payload = json.loads(self.rich().to_json())
        assert payload["format"] == SCENARIO_FORMAT


class TestFromFile:
    def test_invalid_toml_names_the_file(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("mode = [unclosed\n")
        with pytest.raises(ScenarioError, match="broken.toml.*invalid TOML"):
            Scenario.from_file(path)

    def test_invalid_json_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{")
        with pytest.raises(ScenarioError, match="broken.json.*invalid JSON"):
            Scenario.from_file(path)

    def test_semantic_errors_name_the_file(self, tmp_path):
        path = tmp_path / "typo.toml"
        path.write_text('[policy]\nheuristic = "MELT"\n')
        with pytest.raises(ScenarioError, match="typo.toml.*did you mean 'MECT'"):
            Scenario.from_file(path)

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "scenario.yaml"
        path.write_text("mode: trial\n")
        with pytest.raises(ScenarioError, match="use .toml or .json"):
            Scenario.from_file(path)
        with pytest.raises(ScenarioError, match="use .toml or .json"):
            Scenario().to_file(tmp_path / "scenario.yaml")


class TestCommittedExamples:
    def test_examples_load_and_round_trip(self, tmp_path):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2] / "examples" / "scenarios"
        files = sorted(root.glob("*.toml"))
        assert len(files) >= 3
        for path in files:
            scenario = Scenario.from_file(path)
            assert scenario.mode in MODES
            rewritten = scenario.to_file(tmp_path / path.name)
            assert Scenario.from_file(rewritten) == scenario
