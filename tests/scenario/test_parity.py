"""Bitwise parity: scenario/registry-built runs match direct construction.

The redesign's contract is that resolving policies by name through the
plugin registry and driving runs from a declarative :class:`Scenario`
changes *nothing* about the simulation trajectory — same rng streams,
same results, same manifest digests — across all three run shapes.
"""

from __future__ import annotations

import warnings
from dataclasses import replace

import pytest

from repro import api
from repro import rng as rng_mod
from repro.experiments.runner import TrialPlan, VariantSpec, run_trial_variant
from repro.filters.chain import build_filter_chain
from repro.heuristics.registry import build_heuristic
from repro.obs.manifest import config_digest
from repro.scenario import EnsembleSettings, Scenario
from repro.service import ServiceConfig
from repro.sim.engine import run_trial
from repro.sim.system import build_trial_system
from tests.conftest import tiny_config


SPEC = VariantSpec("MECT", "en+rob")


def direct_trial(system):
    """The hand-built reference: engine + explicit policy objects."""
    rng = rng_mod.stream(system.config.seed, "heuristic", SPEC.label)
    heuristic = build_heuristic(SPEC.heuristic, rng)
    chain = build_filter_chain(SPEC.variant, system.config.filters)
    return run_trial(system, heuristic, chain)


class TestTrialParity:
    def test_scenario_trial_matches_direct_engine_run(self, tiny_system):
        scenario = Scenario("mect", "EN+ROB", config=tiny_system.config)
        via_scenario = api.run_scenario(scenario, system=tiny_system)
        assert via_scenario == replace(direct_trial(tiny_system), outcomes=())

    def test_scenario_from_file_matches_in_memory(self, tmp_path):
        scenario = Scenario("MECT", "en+rob", seed=123, num_tasks=60,
                            config=tiny_config())
        path = scenario.to_file(tmp_path / "trial.toml")
        system = scenario.build_system()
        from_file = api.run_scenario(str(path), system=system)
        in_memory = api.run_scenario(scenario, system=system)
        assert from_file == in_memory

    def test_config_digest_matches_manual_config(self):
        scenario = Scenario(seed=123, config=tiny_config(seed=5))
        manual = tiny_config(seed=5).with_seed(123)
        assert config_digest(scenario.resolved_config()) == config_digest(manual)


class TestTrialPlanShim:
    def test_plan_matches_deprecated_entry_point(self, tiny_system):
        planned = TrialPlan(system=tiny_system, spec=SPEC).run()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = run_trial_variant(tiny_system, SPEC)
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "TrialPlan" in str(deprecations[0].message)
        assert shimmed == planned

    def test_plan_run_does_not_warn(self, tiny_system):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            TrialPlan(system=tiny_system, spec=SPEC).run()

    def test_observed_property(self, tiny_system):
        from repro.obs.sinks import MetricsRegistry

        plain = TrialPlan(system=tiny_system, spec=SPEC)
        assert not plain.observed
        observed = TrialPlan(
            system=tiny_system, spec=SPEC, metrics=MetricsRegistry()
        )
        assert observed.observed
        # The observed path is results-neutral.
        assert observed.run() == plain.run()


class TestEnsembleParity:
    def test_scenario_ensemble_matches_run_ensemble(self):
        config = tiny_config()
        scenario = Scenario(
            "mect", "en+rob", config=config,
            mode="ensemble", ensemble=EnsembleSettings(num_trials=2),
        )
        via_scenario = api.run_scenario(scenario)
        direct = api.run_ensemble(
            Scenario("MECT", "EN+ROB", config=config), 2
        )
        assert via_scenario.base_seed == direct.base_seed
        assert via_scenario.specs == direct.specs == (SPEC,)
        assert via_scenario.results[SPEC] == direct.results[SPEC]


class TestServiceParity:
    def test_replay_service_matches_trial(self, tiny_system):
        scenario = Scenario("mect", "en+rob", config=tiny_system.config,
                            mode="service")
        via_scenario = api.run_scenario(scenario, system=tiny_system)
        # Replay keeps per-task outcomes; the trajectory must be identical.
        assert via_scenario.trial_result == direct_trial(tiny_system)

    def test_scenario_service_matches_run_service(self, tiny_system):
        service = ServiceConfig(traffic="poisson", task_limit=80)
        scenario = Scenario("LL", "en+rob", config=tiny_system.config,
                            mode="service", service=service)
        via_scenario = api.run_scenario(scenario, system=tiny_system)
        direct = api.run_service(scenario, service, system=tiny_system)
        assert via_scenario.makespan == direct.makespan
        assert via_scenario.total_energy == direct.total_energy
        assert via_scenario.totals.mapped == direct.totals.mapped
        assert len(via_scenario.windows) == len(direct.windows)


@pytest.fixture(autouse=True)
def _no_stray_deprecations(recwarn):
    """Scenario-driven runs must never route through deprecated shims."""
    yield
    stray = [
        w for w in recwarn.list
        if w.category is DeprecationWarning and "repro" in str(w.message)
    ]
    assert not stray or all(
        "run_trial_variant" in str(w.message) for w in stray
    )
