"""Tests for the content-addressed kernel cache (repro.perf)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.perf.kernel_cache import CacheStats, InternedKernel, KernelCache, PerfConfig
from repro.stoch.ops import set_kernel_cache, truncate_below
from repro.stoch.pmf import PMF


def _kernel(value: float = 1.0) -> InternedKernel:
    probs = np.array([value])
    probs /= probs.sum()
    probs.setflags(write=False)
    return InternedKernel(probs, 0, None, None, None)


class TestKernelCache:
    def test_lru_eviction_prefers_recently_used(self):
        cache = KernelCache(max_entries=2)
        cache.put(("a",), _kernel())
        cache.put(("b",), _kernel())
        assert cache.get(("a",)) is not None  # refresh "a"
        cache.put(("c",), _kernel())  # evicts the stale "b"
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.get(("c",)) is not None

    def test_stats_counters(self):
        cache = KernelCache(max_entries=1)
        assert cache.get(("missing",)) is None
        cache.put(("x",), _kernel())
        assert cache.get(("x",)) is not None
        evicted = cache.put(("y",), _kernel())
        assert evicted == 1
        stats = cache.stats()
        assert stats == CacheStats(hits=1, misses=1, evictions=1, entries=1)
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5
        assert stats.to_dict()["hit_rate"] == 0.5

    def test_empty_cache_hit_rate_is_zero(self):
        assert KernelCache().stats().hit_rate == 0.0

    def test_clear_keeps_counters(self):
        cache = KernelCache()
        cache.put(("x",), _kernel())
        cache.get(("x",))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            KernelCache(0)


class TestInternedKernel:
    def test_rebuild_is_bitwise_and_backfills_lazily(self):
        result = PMF(30.0, 15.0, np.array([0.2, 0.3, 0.5]))
        kernel = InternedKernel.from_result(result, 0.0)
        assert kernel.lo == 2
        # Derivations are not forced at intern time...
        assert kernel.m1 is None and kernel.cdf is None
        rebuilt = kernel.rebuild(0.0, 15.0)
        # ...but are materialized (and shared) by the first rebuild.
        assert kernel.m1 is not None and kernel.cdf is not None
        assert rebuilt.start == result.start
        assert rebuilt.probs.tobytes() == result.probs.tobytes()
        assert rebuilt.mean() == result.mean()
        assert rebuilt.cdf.tobytes() == result.cdf.tobytes()

    def test_from_result_carries_computed_derivations(self):
        result = PMF(0.0, 1.0, np.array([0.5, 0.5]))
        result.mean()
        result.content_key()
        kernel = InternedKernel.from_result(result, 0.0)
        assert kernel.m1 is not None
        assert kernel.key is not None


class TestPerfConfig:
    def test_defaults_enable_everything(self):
        perf = PerfConfig()
        assert perf.kernel_cache and perf.batch_mapper
        assert isinstance(perf.make_cache(), KernelCache)

    def test_disabled_is_the_reference(self):
        perf = PerfConfig.disabled()
        assert not perf.kernel_cache and not perf.batch_mapper
        assert perf.make_cache() is None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PerfConfig(max_entries=0)


@st.composite
def pmfs(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    probs = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n,
            max_size=n,
        ).filter(lambda xs: sum(xs) > 1e-6)
    )
    start = draw(st.floats(min_value=-500.0, max_value=500.0))
    dt = draw(st.sampled_from([0.5, 1.0, 15.0]))
    return PMF(start, dt, np.asarray(probs, dtype=np.float64))


class TestCachedTruncateBitwise:
    @given(pmfs(), st.floats(min_value=-0.1, max_value=1.2))
    def test_miss_and_hit_match_uncached_exactly(self, pmf, frac):
        """Interned truncations are bitwise identical to fresh ones.

        The cut sweeps past both ends of the support so the no-op,
        materializing, and degenerate branches are all exercised.
        """
        t = pmf.start + frac * (pmf.probs.size * pmf.dt)
        reference = truncate_below(pmf, t)
        cache = KernelCache()
        previous = set_kernel_cache(cache)
        try:
            first = truncate_below(pmf, t)  # miss path
            second = truncate_below(pmf, t)  # hit path (when interned)
        finally:
            set_kernel_cache(previous)
        for out in (first, second):
            assert out.start == reference.start
            assert out.dt == reference.dt
            assert out.probs.tobytes() == reference.probs.tobytes()
