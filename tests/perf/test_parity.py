"""Results-neutrality of the performance layer.

The acceptance contract of :mod:`repro.perf`: every knob combination
produces bitwise-identical trial results — same scalar fields, same
per-task outcomes, same manifest digests — across all four heuristics
and with the filters on or off.  Speed is allowed to vary; results are
not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_trial_system
from repro.experiments.runner import TrialPlan, VariantSpec
from repro.obs.manifest import trial_digest
from repro.perf.kernel_cache import PerfConfig
from repro.sim.mapper import CandidateBuilder, build_candidate_set
from repro.sim.state import CoreState, QueuedTask, RunningTask
from tests.conftest import micro_config

HEURISTICS = ("SQ", "MECT", "LL", "Random")
VARIANTS = ("none", "en+rob")


@pytest.fixture(scope="module")
def system():
    return build_trial_system(micro_config(seed=11))


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("heuristic", HEURISTICS)
def test_perf_knobs_are_results_neutral(system, heuristic, variant):
    spec = VariantSpec(heuristic, variant)

    def run(perf):
        return TrialPlan(
            system=system, spec=spec, keep_outcomes=True, perf=perf
        ).run()

    reference = run(PerfConfig.disabled())
    for perf in (
        PerfConfig(),  # everything on
        PerfConfig(batch_mapper=False),  # cache only
        PerfConfig(kernel_cache=False),  # batch mapper only
    ):
        result = run(perf)
        assert result == reference  # full dataclass equality incl. outcomes
        assert trial_digest(result) == trial_digest(reference)


def _fresh_cores(system):
    cluster = system.cluster
    dt = system.config.grid.dt
    return [
        CoreState(cid, int(cluster.core_node_index[cid]), dt)
        for cid in range(cluster.num_cores)
    ]


class TestBuilderMatchesReference:
    """CandidateBuilder's batched arrays equal the per-core loop's, bitwise."""

    ARRAYS = ("core_ids", "pstates", "queue_len", "eet", "eec", "ect", "prob_on_time")

    def _assert_equal(self, got, ref):
        for name in self.ARRAYS:
            assert np.array_equal(getattr(got, name), getattr(ref, name)), name
        assert np.array_equal(got.mask, ref.mask)

    def test_idle_cluster(self, system):
        cores = _fresh_cores(system)
        builder = CandidateBuilder(cores, system.table)
        for task in system.workload.tasks[:5]:
            got = builder.build(task, task.arrival)
            ref = build_candidate_set(task, cores, system.table, task.arrival)
            self._assert_equal(got, ref)

    def test_with_running_and_queued_work(self, system):
        cores = _fresh_cores(system)
        builder = CandidateBuilder(cores, system.table)
        probe = system.workload.tasks[0]
        t0 = probe.arrival
        pmf = system.table.pmf(probe.type_id, cores[0].node_index, 0)
        cores[0].set_running(
            RunningTask(probe, 0, pmf, start_time=t0, completion_time=t0 + 200.0)
        )
        cores[0].enqueue(QueuedTask(probe, 0, pmf))
        last = cores[-1]
        pmf_last = system.table.pmf(probe.type_id, last.node_index, 1)
        last.set_running(
            RunningTask(probe, 1, pmf_last, start_time=t0, completion_time=t0 + 500.0)
        )
        for task in system.workload.tasks[1:6]:
            got = builder.build(task, task.arrival)
            ref = build_candidate_set(task, cores, system.table, task.arrival)
            self._assert_equal(got, ref)
