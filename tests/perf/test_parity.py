"""Results-neutrality of the performance layer.

The acceptance contract of :mod:`repro.perf`: every knob combination
produces bitwise-identical trial results — same scalar fields, same
per-task outcomes, same manifest digests — across all four heuristics
and with the filters on or off.  Speed is allowed to vary; results are
not.

The ``backend`` knob is the one deliberate exception: the numpy
backend (the default) stays bitwise, while compiled backends are held
to the kernel contract — discrete fields exact, floats within 1e-12.
Canonical digests are always defined by the numpy path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_trial_system
from repro.experiments.runner import TrialPlan, VariantSpec
from repro.obs.manifest import trial_digest
from repro.perf.kernel_cache import PerfConfig
from repro.perf.kernels import available_backends
from repro.sim.mapper import CandidateBuilder, build_candidate_set
from repro.sim.state import CoreState, QueuedTask, RunningTask
from tests.conftest import micro_config

HEURISTICS = ("SQ", "MECT", "LL", "Random")
VARIANTS = ("none", "en+rob")
COMPILED_BACKENDS = tuple(n for n in available_backends() if n != "numpy")


@pytest.fixture(scope="module")
def system():
    return build_trial_system(micro_config(seed=11))


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("heuristic", HEURISTICS)
def test_perf_knobs_are_results_neutral(system, heuristic, variant):
    spec = VariantSpec(heuristic, variant)

    def run(perf):
        return TrialPlan(
            system=system, spec=spec, keep_outcomes=True, perf=perf
        ).run()

    reference = run(PerfConfig.disabled())
    for perf in (
        PerfConfig(),  # everything on
        PerfConfig(batch_mapper=False),  # cache only
        PerfConfig(kernel_cache=False),  # batch mapper only
        PerfConfig(backend="numpy"),  # backend knob explicit, still bitwise
    ):
        result = run(perf)
        assert result == reference  # full dataclass equality incl. outcomes
        assert trial_digest(result) == trial_digest(reference)


@pytest.mark.skipif(not COMPILED_BACKENDS, reason="no compiled backend available")
@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("heuristic", HEURISTICS)
def test_compiled_backend_parity(system, heuristic, variant, backend, assert_trial_close):
    """Compiled backends reproduce every trial within the kernel contract."""
    spec = VariantSpec(heuristic, variant)

    def run(perf):
        return TrialPlan(system=system, spec=spec, keep_outcomes=True, perf=perf).run()

    reference = run(PerfConfig.disabled())
    compiled = run(PerfConfig(backend=backend))
    assert_trial_close(compiled, reference)


def _fresh_cores(system):
    cluster = system.cluster
    dt = system.config.grid.dt
    return [
        CoreState(cid, int(cluster.core_node_index[cid]), dt)
        for cid in range(cluster.num_cores)
    ]


class TestBuilderMatchesReference:
    """CandidateBuilder's batched arrays equal the per-core loop's, bitwise."""

    ARRAYS = ("core_ids", "pstates", "queue_len", "eet", "eec", "ect", "prob_on_time")

    def _assert_equal(self, got, ref):
        for name in self.ARRAYS:
            assert np.array_equal(getattr(got, name), getattr(ref, name)), name
        assert np.array_equal(got.mask, ref.mask)

    def test_idle_cluster(self, system):
        cores = _fresh_cores(system)
        builder = CandidateBuilder(cores, system.table)
        for task in system.workload.tasks[:5]:
            got = builder.build(task, task.arrival)
            ref = build_candidate_set(task, cores, system.table, task.arrival)
            self._assert_equal(got, ref)

    def test_with_running_and_queued_work(self, system):
        cores = _fresh_cores(system)
        builder = CandidateBuilder(cores, system.table)
        probe = system.workload.tasks[0]
        t0 = probe.arrival
        pmf = system.table.pmf(probe.type_id, cores[0].node_index, 0)
        cores[0].set_running(
            RunningTask(probe, 0, pmf, start_time=t0, completion_time=t0 + 200.0)
        )
        cores[0].enqueue(QueuedTask(probe, 0, pmf))
        last = cores[-1]
        pmf_last = system.table.pmf(probe.type_id, last.node_index, 1)
        last.set_running(
            RunningTask(probe, 1, pmf_last, start_time=t0, completion_time=t0 + 500.0)
        )
        for task in system.workload.tasks[1:6]:
            got = builder.build(task, task.arrival)
            ref = build_candidate_set(task, cores, system.table, task.arrival)
            self._assert_equal(got, ref)

    @pytest.mark.skipif(not COMPILED_BACKENDS, reason="no compiled backend available")
    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    def test_compiled_score_rows_within_tolerance(self, system, backend):
        """Decision inputs from the compiled batch kernel: discrete
        arrays bitwise, probability rows within the ≤1e-12 contract.

        This is the load-bearing half of backend parity — the candidate
        arrays are what every heuristic argmin and filter threshold
        reads, so pinning them here localizes any trial-level
        trajectory divergence to exact-tie reordering.
        """
        from repro.perf.kernels import resolve_backend

        cores = _fresh_cores(system)
        probe = system.workload.tasks[0]
        t0 = probe.arrival
        pmf = system.table.pmf(probe.type_id, cores[0].node_index, 0)
        cores[0].set_running(
            RunningTask(probe, 0, pmf, start_time=t0, completion_time=t0 + 200.0)
        )
        cores[0].enqueue(QueuedTask(probe, 0, pmf))
        compiled = CandidateBuilder(
            cores, system.table, backend=resolve_backend(backend)
        )
        reference = CandidateBuilder(cores, system.table)
        for task in system.workload.tasks[1:6]:
            got = compiled.build(task, task.arrival)
            ref = reference.build(task, task.arrival)
            for name in ("core_ids", "pstates", "queue_len"):
                assert np.array_equal(getattr(got, name), getattr(ref, name)), name
            for name in ("eet", "eec", "ect", "prob_on_time"):
                np.testing.assert_allclose(
                    getattr(got, name),
                    getattr(ref, name),
                    rtol=1e-12,
                    atol=1e-15,
                    err_msg=name,
                )
            assert np.array_equal(got.mask, ref.mask)
