"""Backend resolution, configuration plumbing, and the dispatch seam.

Covers the :mod:`repro.perf.kernels` machinery itself — name
validation, env override, warn-and-fallback, the ``set_kernel_backend``
nesting protocol — plus the ``PerfConfig.backend`` knob and the CLI
flag.  Numerical agreement of the kernels lives in
``test_kernel_equivalence.py``; engine-level parity in
``test_parity.py`` / ``test_ensemble_parity.py``.

Everything here runs in the numba-free default environment: tests that
need a *compiled* backend use whichever one ``available_backends``
reports (the cext backend compiles with the host toolchain) and skip
when the environment provides none — that skip is itself the fallback
contract working.
"""

from __future__ import annotations

import warnings

import pytest

from repro.perf import PerfConfig
from repro.perf.kernels import (
    BACKEND_CHOICES,
    available_backends,
    default_backend_name,
    describe_backends,
    resolve_backend,
)
from repro.stoch import ops as ops_mod
from repro.stoch.ops import set_kernel_backend


def compiled_backend_names() -> tuple[str, ...]:
    """The compiled backends runnable in this environment (may be empty)."""
    return tuple(n for n in available_backends() if n != "numpy")


class TestResolution:
    def test_numpy_resolves_to_none(self):
        assert resolve_backend("numpy") is None

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("fortran")

    def test_available_always_includes_numpy(self):
        names = available_backends()
        assert names[0] == "numpy"
        assert set(names) <= set(BACKEND_CHOICES)

    def test_explicit_unavailable_backend_warns_and_falls_back(self):
        missing = [
            n for n in ("numba", "cext") if n not in available_backends()
        ]
        if not missing:
            pytest.skip("every compiled backend is available here")
        with pytest.warns(RuntimeWarning, match="unavailable"):
            assert resolve_backend(missing[0]) is None

    def test_auto_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            backend = resolve_backend("auto")
        assert backend is None or backend.compiled

    def test_compiled_backend_loads_and_is_cached(self):
        names = compiled_backend_names()
        if not names:
            pytest.skip("no compiled backend in this environment")
        first = resolve_backend(names[0])
        assert first is not None and first.compiled and first.name == names[0]
        assert resolve_backend(names[0]) is first  # per-process cache

    def test_describe_backends_catalog(self):
        catalog = describe_backends()
        assert catalog["numpy"] == {
            "available": True,
            "compiled": False,
            "warmup_s": 0.0,
        }
        for name in ("numba", "cext"):
            entry = catalog[name]
            assert entry["compiled"] is True
            if entry["available"]:
                assert entry["warmup_s"] >= 0.0
            else:
                assert entry["warmup_s"] is None


class TestEnvOverride:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF_BACKEND", raising=False)
        assert default_backend_name() == "numpy"
        assert PerfConfig().backend == "numpy"

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_BACKEND", "AUTO")
        assert default_backend_name() == "auto"
        assert PerfConfig().backend == "auto"

    def test_unknown_env_value_warns_and_uses_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_BACKEND", "gpu")
        with pytest.warns(RuntimeWarning, match="REPRO_PERF_BACKEND"):
            assert default_backend_name() == "numpy"

    def test_explicit_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_BACKEND", "auto")
        assert PerfConfig(backend="numpy").backend == "numpy"


class TestPerfConfig:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            PerfConfig(backend="fortran")

    def test_disabled_pins_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_BACKEND", "auto")
        assert PerfConfig.disabled().backend == "numpy"

    def test_make_backend_numpy_is_none(self):
        assert PerfConfig(backend="numpy").make_backend() is None

    def test_make_backend_compiled(self):
        names = compiled_backend_names()
        if not names:
            pytest.skip("no compiled backend in this environment")
        backend = PerfConfig(backend=names[0]).make_backend()
        assert backend is not None and backend.name == names[0]


class TestDispatchSeam:
    def test_set_kernel_backend_nests_and_restores(self):
        sentinel = object()
        previous = set_kernel_backend(sentinel)
        try:
            assert ops_mod._kernel_backend is sentinel
            inner_prev = set_kernel_backend(None)
            assert inner_prev is sentinel
            assert set_kernel_backend(inner_prev) is None
        finally:
            set_kernel_backend(previous)
        assert ops_mod._kernel_backend is previous

    def test_engine_restores_backend_after_run(self):
        names = compiled_backend_names()
        if not names:
            pytest.skip("no compiled backend in this environment")
        from repro import build_trial_system
        from repro.experiments.runner import TrialPlan, VariantSpec
        from tests.conftest import micro_config

        system = build_trial_system(micro_config(seed=5))
        assert ops_mod._kernel_backend is None
        TrialPlan(
            system=system,
            spec=VariantSpec("SQ", "none"),
            perf=PerfConfig(backend=names[0]),
        ).run()
        assert ops_mod._kernel_backend is None


def test_cli_flag_round_trip(capsys):
    """``--perf-backend`` reaches the engine on every run subcommand."""
    from repro.cli import main

    code = main(
        [
            "trial",
            "--tasks",
            "20",
            "--seed",
            "3",
            "--heuristic",
            "SQ",
            "--filters",
            "none",
            "--perf-backend",
            "auto",
        ]
    )
    assert code == 0
    assert "missed" in capsys.readouterr().out
