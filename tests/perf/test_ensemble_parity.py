"""Ensemble-level results-neutrality of the full optimization stack.

PR-level acceptance: with every ensemble optimization engaged at once —
batched table construction, the warm cross-spec :class:`TrialCache`,
the vectorized mapper, the kernel cache, chunked dispatch and the
single-copy result frames — every ``TrialResult`` and the run's
manifest digests are bitwise identical to the fully-disabled reference
path, at any ``n_jobs`` and chunk size.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import VariantSpec, run_ensemble
from repro.obs.manifest import build_manifest
from repro.perf.kernel_cache import PerfConfig
from repro.perf.kernels import available_backends
from tests.conftest import micro_config

SPECS = (VariantSpec("LL", "en+rob"), VariantSpec("MECT", "none"), VariantSpec("SQ", "en+rob"))
TRIALS = 4
COMPILED_BACKENDS = tuple(n for n in available_backends() if n != "numpy")


def run(perf, *, n_jobs=1, chunk_size=None):
    return run_ensemble(
        SPECS,
        micro_config(seed=31),
        num_trials=TRIALS,
        base_seed=17,
        n_jobs=n_jobs,
        keep_outcomes=True,
        perf=perf,
        chunk_size=chunk_size,
    )


@pytest.fixture(scope="module")
def reference():
    return run(PerfConfig.disabled())


@pytest.mark.parametrize(
    "n_jobs,chunk_size",
    [(1, None), (2, None), (2, 1), (2, 3)],
    ids=["serial", "parallel-auto", "parallel-chunk1", "parallel-chunk3"],
)
def test_all_optimizations_bitwise_match_reference(reference, n_jobs, chunk_size):
    optimized = run(None, n_jobs=n_jobs, chunk_size=chunk_size)
    for spec in SPECS:
        assert optimized.results[spec] == reference.results[spec]
    config = micro_config(seed=31)
    assert (
        build_manifest(optimized, config).to_dict()
        == build_manifest(reference, config).to_dict()
    )


@pytest.mark.skipif(not COMPILED_BACKENDS, reason="no compiled backend available")
@pytest.mark.parametrize("backend", COMPILED_BACKENDS)
@pytest.mark.parametrize("n_jobs", [1, 2], ids=["serial", "parallel"])
def test_compiled_backend_ensemble_parity(reference, backend, n_jobs, assert_trial_close):
    """Every trial of every spec stays within the kernel contract,
    including across worker processes (each resolves its own backend)."""
    compiled = run(PerfConfig(backend=backend), n_jobs=n_jobs)
    for spec in SPECS:
        got_trials = compiled.results[spec]
        ref_trials = reference.results[spec]
        assert len(got_trials) == len(ref_trials)
        for got, ref in zip(got_trials, ref_trials):
            assert_trial_close(got, ref)


def test_each_knob_alone_matches_reference(reference):
    for perf in (
        PerfConfig(warm_cache=False, batch_table=False),  # PR-4 baseline
        PerfConfig(batch_table=False),  # + warm cross-spec cache
        PerfConfig(warm_cache=False),  # + batched table build
    ):
        partial = run(perf)
        for spec in SPECS:
            assert partial.results[spec] == reference.results[spec]
