"""Property-based compiled-vs-numpy agreement for every kernel slot.

Each test installs a compiled backend via the ``set_kernel_backend``
seam, runs the public op, and compares against the plain numpy path on
the same inputs.  The documented contract is: index arithmetic bitwise
(the compiled kernels mirror the reference's IEEE op order), float
accumulations within 1e-12 relative (sequential C sums vs numpy's
pairwise/BLAS reductions).

Strategies bias toward the adversarial shapes the dispatch branches
care about: degenerate single-bin pmfs (delta shortcuts), exact-zero
tails (zero-mass-after-cut truncations), long geometric tails, and
ready/exec supports of mismatched widths.  Skips when the environment
provides no compiled backend — the numpy path is then the only path
and is covered by the rest of the suite.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.perf.kernels import available_backends, resolve_backend
from repro.stoch.ops import (
    convolve,
    convolve_many,
    expectation_of_sum,
    prob_sum_at_most,
    set_kernel_backend,
    truncate_below,
)
from repro.stoch.pmf import PMF

COMPILED = tuple(n for n in available_backends() if n != "numpy")

pytestmark = [
    pytest.mark.skipif(not COMPILED, reason="no compiled kernel backend available"),
    pytest.mark.parametrize("backend_name", COMPILED),
]

RTOL = 1e-12
ATOL = 1e-15


@contextmanager
def installed(name):
    previous = set_kernel_backend(resolve_backend(name))
    try:
        yield
    finally:
        set_kernel_backend(previous)


def assert_pmf_close(got: PMF, want: PMF) -> None:
    assert got.dt == want.dt
    assert got.start == pytest.approx(want.start, rel=1e-12, abs=1e-12)
    assert got.probs.size == want.probs.size
    np.testing.assert_allclose(got.probs, want.probs, rtol=RTOL, atol=ATOL)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

dts = st.sampled_from([0.25, 1.0, 15.0])
starts = st.integers(min_value=-40, max_value=400).map(float)

# Raw weights: exact zeros are common (hypothesis shrinks toward them),
# which exercises trimming and the zero-mass truncation branch.
weights = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


@st.composite
def prob_arrays(draw) -> np.ndarray:
    kind = draw(st.sampled_from(["general", "single", "long_tail"]))
    if kind == "single":
        return np.ones(1)
    if kind == "long_tail":
        # Geometric decay over many bins: the tail dips through the
        # compact() trim threshold (max * 1e-12) inside the support.
        n = draw(st.integers(min_value=8, max_value=48))
        ratio = draw(st.sampled_from([0.1, 0.3, 0.5]))
        return ratio ** np.arange(n, dtype=np.float64)
    vals = draw(st.lists(weights, min_size=1, max_size=32))
    arr = np.asarray(vals, dtype=np.float64)
    if arr.sum() <= 0.0:
        arr[draw(st.integers(min_value=0, max_value=arr.size - 1))] = 1.0
    return arr


@st.composite
def pmfs(draw, dt: float | None = None) -> PMF:
    if dt is None:
        dt = draw(dts)
    return PMF(draw(starts) * dt / 10.0, dt, draw(prob_arrays()))


@st.composite
def pmf_pairs(draw) -> tuple[PMF, PMF]:
    dt = draw(dts)
    return draw(pmfs(dt=dt)), draw(pmfs(dt=dt))


# ----------------------------------------------------------------------
# convolve / convolve_many
# ----------------------------------------------------------------------


@given(pair=pmf_pairs())
@settings(max_examples=150, deadline=None)
def test_convolve_matches_numpy(backend_name, pair):
    a, b = pair
    reference = convolve(a, b)
    with installed(backend_name):
        compiled = convolve(a, b)
    assert_pmf_close(compiled, reference)


@given(p=pmfs(), dt_scale=st.sampled_from([1.0, 3.0]), t=starts)
@settings(max_examples=50, deadline=None)
def test_convolve_delta_shortcut_is_backend_free(backend_name, p, dt_scale, t):
    # Single-bin operands short-circuit to shift() before dispatch;
    # both paths must return the identical translation.
    d = PMF.delta(t, p.dt)
    reference = convolve(d, p)
    with installed(backend_name):
        compiled = convolve(d, p)
    assert compiled.start == reference.start
    np.testing.assert_array_equal(compiled.probs, reference.probs)


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_convolve_many_tree_matches_fold(backend_name, data):
    dt = data.draw(dts)
    operands = data.draw(st.lists(pmfs(dt=dt), min_size=3, max_size=6))
    reference = convolve_many(operands)
    with installed(backend_name):
        compiled = convolve_many(operands)
    # The pairwise tree contracts in a different order than the
    # sequential fold, so supports can differ where trimming flips on
    # last-ulp values; compare the distributions, not the arrays.
    assert compiled.dt == reference.dt
    assert compiled.mean() == pytest.approx(reference.mean(), rel=1e-9, abs=1e-9)
    probe = PMF.delta(0.0, dt)
    lo = min(compiled.start, reference.start)
    hi = max(
        compiled.start + compiled.probs.size * dt,
        reference.start + reference.probs.size * dt,
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        q = lo + frac * (hi - lo)
        assert prob_sum_at_most(compiled, probe, q) == pytest.approx(
            prob_sum_at_most(reference, probe, q), rel=1e-9, abs=1e-9
        )


# ----------------------------------------------------------------------
# truncate_below
# ----------------------------------------------------------------------


@given(
    p=pmfs(),
    frac=st.floats(min_value=-0.2, max_value=1.3, allow_nan=False),
    degenerate_dt=st.sampled_from([None, 1.0]),
)
@settings(max_examples=150, deadline=None)
def test_truncate_below_matches_numpy(backend_name, p, frac, degenerate_dt):
    t = p.start + frac * (p.probs.size * p.dt)
    reference = truncate_below(p, t, dt_for_degenerate=degenerate_dt)
    with installed(backend_name):
        compiled = truncate_below(p, t, dt_for_degenerate=degenerate_dt)
    assert_pmf_close(compiled, reference)


@given(
    head=st.integers(min_value=1, max_value=5),
    zeros=st.integers(min_value=1, max_value=5),
    degenerate_dt=st.sampled_from([None, 2.0]),
)
@settings(max_examples=40, deadline=None)
def test_truncate_zero_mass_tail_degenerates(backend_name, head, zeros, degenerate_dt):
    # All surviving bins carry exactly zero mass: both paths must agree
    # on the "completes now" delta, including its dt override.
    arr = np.concatenate([np.full(head, 1.0 / head), np.zeros(zeros)])
    p = PMF(0.0, 1.0, arr)
    t = float(head)  # cut keeps only the zero tail
    reference = truncate_below(p, t, dt_for_degenerate=degenerate_dt)
    with installed(backend_name):
        compiled = truncate_below(p, t, dt_for_degenerate=degenerate_dt)
    assert reference.probs.size == 1
    assert compiled.start == reference.start == t
    assert compiled.dt == reference.dt == (degenerate_dt or p.dt)
    np.testing.assert_array_equal(compiled.probs, reference.probs)


# ----------------------------------------------------------------------
# prob_sum_at_most / expectation_of_sum
# ----------------------------------------------------------------------


@given(pair=pmf_pairs(), frac=st.floats(min_value=-0.5, max_value=1.5, allow_nan=False))
@settings(max_examples=150, deadline=None)
def test_prob_sum_at_most_matches_numpy(backend_name, pair, frac):
    ready, exec_pmf = pair
    # Deadlines sweep from before both supports (every index clamps to
    # -1) to beyond them (every index clamps to size-1) — the ready and
    # exec widths are independently drawn, so the clamp boundaries land
    # mid-array on mismatched-width pairs.
    lo = ready.start + exec_pmf.start
    hi = lo + (ready.probs.size + exec_pmf.probs.size) * ready.dt
    deadline = lo + frac * (hi - lo)
    reference = prob_sum_at_most(ready, exec_pmf, deadline)
    with installed(backend_name):
        compiled = prob_sum_at_most(ready, exec_pmf, deadline)
    assert compiled == pytest.approx(reference, rel=RTOL, abs=ATOL)


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_expectation_of_sum_matches_numpy(backend_name, data):
    operands = data.draw(st.lists(pmfs(), min_size=1, max_size=5))
    with installed(backend_name):
        compiled = expectation_of_sum(operands)
    # The backend's moment must not contaminate the shared pmfs: the
    # numpy run below still computes its own bitwise mean.  (Its
    # ``mean()`` then caches ``_m1``, which is why the compiled path
    # runs first here.)
    for p in operands:
        assert object.__getattribute__(p, "_m1") is None
    reference = expectation_of_sum(operands)
    assert compiled == pytest.approx(reference, rel=RTOL, abs=1e-12)


# ----------------------------------------------------------------------
# score_rows (the CandidateBuilder batch kernel, driven directly)
# ----------------------------------------------------------------------


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_score_rows_matches_reference_terms(backend_name, data):
    backend = resolve_backend(backend_name)
    rng = np.random.default_rng(data.draw(st.integers(min_value=0, max_value=2**32 - 1)))
    N = data.draw(st.integers(min_value=1, max_value=3))
    P = data.draw(st.integers(min_value=1, max_value=3))
    W = data.draw(st.integers(min_value=2, max_value=8))
    dt = data.draw(dts)
    # Native widths differ per node; columns past a node's width are
    # padding the kernel must never read into the reduction.
    widths = np.asarray(
        [data.draw(st.integers(min_value=1, max_value=W)) for _ in range(N)],
        dtype=np.int64,
    )
    times = rng.uniform(0.0, 50.0, size=(N, P, W))
    probs = rng.uniform(0.0, 1.0, size=(N, P, W))
    u = data.draw(st.integers(min_value=1, max_value=4))
    row_node = np.asarray(
        [data.draw(st.integers(min_value=0, max_value=N - 1)) for _ in range(u)],
        dtype=np.int64,
    )
    starts = rng.uniform(-10.0, 40.0, size=u)
    sizes = np.asarray(
        [data.draw(st.integers(min_value=1, max_value=6)) for _ in range(u)],
        dtype=np.int64,
    )
    offsets = np.zeros(u, dtype=np.int64)
    offsets[1:] = np.cumsum(sizes)[:-1]
    cdf_flat = np.concatenate(
        [np.sort(rng.uniform(0.0, 1.0, size=int(s))) for s in sizes]
    )
    deadline = data.draw(st.floats(min_value=-20.0, max_value=120.0, allow_nan=False))

    rows = backend.score_rows(
        times, probs, widths, starts, sizes, offsets, row_node, cdf_flat, deadline, dt
    )

    want = np.zeros((u, P))
    for r in range(u):
        node = int(row_node[r])
        cdf = cdf_flat[offsets[r] : offsets[r] + sizes[r]]
        for p in range(P):
            acc = 0.0
            for l in range(int(widths[node])):
                k = int(
                    np.floor(((deadline - times[node, p, l]) - starts[r]) / dt + 1e-9)
                )
                if k >= 0:
                    acc += probs[node, p, l] * cdf[min(k, int(sizes[r]) - 1)]
            want[r, p] = acc
    np.testing.assert_allclose(rows, want, rtol=RTOL, atol=ATOL)
