"""Shared helpers for the perf suite's backend-parity dimension."""

from __future__ import annotations

import math

import pytest

OUTCOME_DISCRETE_FIELDS = ("task_id", "type_id", "core_id", "pstate", "discarded")
OUTCOME_FLOAT_FIELDS = ("arrival", "deadline", "start", "completion")
TRIAL_DISCRETE_FIELDS = (
    "heuristic",
    "variant",
    "seed",
    "num_tasks",
    "missed",
    "completed_within",
    "discarded",
    "late",
    "energy_cutoff",
)
TRIAL_FLOAT_FIELDS = ("total_energy", "budget", "exhaustion_time", "makespan")


def _close(a: float, b: float, tol: float = 1e-12) -> bool:
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def _same_decisions(got, ref) -> bool:
    if len(got.outcomes) != len(ref.outcomes):
        return False
    return all(
        all(getattr(g, name) == getattr(r, name) for name in OUTCOME_DISCRETE_FIELDS)
        for g, r in zip(got.outcomes, ref.outcomes)
    )


def _check_strict(got, ref) -> None:
    for name in TRIAL_DISCRETE_FIELDS:
        assert getattr(got, name) == getattr(ref, name), name
    for name in TRIAL_FLOAT_FIELDS:
        assert _close(getattr(got, name), getattr(ref, name)), name
    for g, r in zip(got.outcomes, ref.outcomes):
        for name in OUTCOME_FLOAT_FIELDS:
            assert _close(getattr(g, name), getattr(r, name)), (g.task_id, name)


@pytest.fixture
def assert_trial_close():
    """Compare two TrialResults under the compiled-backend contract.

    The kernel contract is *value* tolerance, not trajectory equality:
    every decision input (the candidate arrays) agrees with the numpy
    reference to ≤1e-12 — pinned at the mapper level by
    ``TestBuilderMatchesReference`` — but a heuristic argmin over
    *exactly tied* scores (e.g. LL's load is exactly 0 for every
    candidate with ``rho == 1``) can break a tie differently when the
    compiled reduction lands one ulp away, and a single early flip
    cascades through the rest of the trial.

    Hence two tiers: when the decision sequence matches (the common
    case — equally-tied scores usually agree bitwise too), every float
    must agree to ≤1e-12; when a tie reordered the trajectory, the
    trial must still tell the same story — identical workload, the same
    miss count to within 10% of tasks, and aggregate energy/makespan
    within 15%.
    """

    def check(got, ref):
        assert got.heuristic == ref.heuristic
        assert got.variant == ref.variant
        assert got.seed == ref.seed
        assert got.num_tasks == ref.num_tasks
        if _same_decisions(got, ref):
            _check_strict(got, ref)
            return
        slack = max(1, round(0.1 * ref.num_tasks))
        assert abs(got.missed - ref.missed) <= slack
        assert got.budget == ref.budget
        assert _close(got.total_energy, ref.total_energy, tol=0.15)
        assert _close(got.makespan, ref.makespan, tol=0.15)
        if math.isinf(ref.exhaustion_time) or math.isinf(got.exhaustion_time):
            assert got.exhaustion_time == ref.exhaustion_time
        else:
            assert _close(got.exhaustion_time, ref.exhaustion_time, tol=0.15)

    return check
