"""Eviction pressure keeps the kernel cache results-neutral.

A tiny ``max_entries`` forces the LRU to churn constantly during a real
trial — the nastiest regime for an interning cache, because almost every
lookup re-materializes a kernel that was just thrown away.  The contract
under test: results stay bitwise identical to the uncached reference,
and every eviction the cache's own counters record is also visible to
the op observer as a ``cache_evict`` operation (the two instrumentation
paths must not drift apart).
"""

from __future__ import annotations

import pytest

from repro import build_trial_system
from repro.experiments.runner import TrialPlan, VariantSpec
from repro.obs.manifest import trial_digest
from repro.obs.sinks import MetricsRegistry
from repro.perf.kernel_cache import PerfConfig
from repro.perf.trial_cache import TrialCache
from tests.conftest import micro_config

SPEC = VariantSpec("LL", "en+rob")


@pytest.fixture(scope="module")
def reference():
    system = build_trial_system(micro_config(seed=23))
    return TrialPlan(
        system=system, spec=SPEC, keep_outcomes=True, perf=PerfConfig.disabled()
    ).run()


@pytest.mark.parametrize("max_entries", (1, 4, 32))
def test_tiny_cache_is_results_neutral(reference, max_entries):
    perf = PerfConfig(max_entries=max_entries)
    system = build_trial_system(micro_config(seed=23), perf=perf)
    result = TrialPlan(system=system, spec=SPEC, keep_outcomes=True, perf=perf).run()
    assert result == reference
    assert trial_digest(result) == trial_digest(reference)


def test_evictions_happen_and_observer_counts_match():
    perf = PerfConfig(max_entries=4)
    system = build_trial_system(micro_config(seed=23), perf=perf)
    metrics = MetricsRegistry()
    TrialPlan(
        system=system, spec=SPEC, keep_outcomes=True, perf=perf, metrics=metrics
    ).run()
    evictions = metrics.counter("perf.cache.evictions")
    assert evictions > 0  # capacity 4 must churn on a real trial
    # The op observer saw one cache_evict per eviction the cache counted.
    assert metrics.counter("stoch.ops.cache_evict") == evictions
    # Steady state: a full cache holds exactly its capacity.
    assert metrics.counter("perf.cache.entries") == 4


def test_shared_tiny_cache_attributes_evictions_per_spec():
    """Per-spec eviction deltas of a shared churning cache sum to the total."""
    perf = PerfConfig(max_entries=4)
    system = build_trial_system(micro_config(seed=23), perf=perf)
    shared = TrialCache(perf)
    metrics = MetricsRegistry()
    specs = (SPEC, VariantSpec("MECT", "none"))
    for spec in specs:
        TrialPlan(
            system=system, spec=spec, keep_outcomes=True,
            perf=perf, metrics=metrics, shared=shared,
        ).run()
    total = metrics.counter("perf.cache.evictions")
    per_spec = sum(
        metrics.counter(f"perf.cache.evictions.{spec.label}") for spec in specs
    )
    assert total > 0
    assert per_spec == total
    assert shared.stats().evictions == total
