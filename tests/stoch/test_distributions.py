"""Tests for continuous-law discretizers (repro.stoch.distributions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stoch.distributions import (
    discretized_exponential,
    discretized_gamma,
    discretized_normal,
    discretized_uniform,
)


class TestGamma:
    def test_mean_matches(self):
        pmf = discretized_gamma(mean=750.0, cv=0.2, dt=5.0)
        assert pmf.mean() == pytest.approx(750.0, rel=0.01)

    def test_std_matches_cv(self):
        pmf = discretized_gamma(mean=750.0, cv=0.2, dt=5.0)
        assert pmf.std() == pytest.approx(150.0, rel=0.05)

    def test_mass_normalized(self):
        pmf = discretized_gamma(mean=100.0, cv=0.3, dt=2.0)
        assert pmf.total_mass() == pytest.approx(1.0)

    def test_support_positive(self):
        pmf = discretized_gamma(mean=50.0, cv=0.5, dt=1.0)
        assert pmf.start >= 0.0

    def test_tail_truncation_shrinks_support(self):
        wide = discretized_gamma(mean=100.0, cv=0.2, dt=1.0, tail_sigmas=5.0)
        narrow = discretized_gamma(mean=100.0, cv=0.2, dt=1.0, tail_sigmas=2.0)
        assert len(narrow) < len(wide)

    def test_small_mean_relative_to_dt(self):
        # Narrower than a single bin: degenerates but stays a valid pmf.
        pmf = discretized_gamma(mean=1.0, cv=0.05, dt=10.0)
        assert pmf.total_mass() == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            discretized_gamma(0.0, 0.2, 1.0)
        with pytest.raises(ValueError):
            discretized_gamma(10.0, -0.2, 1.0)

    def test_right_skewed(self):
        # Gamma with large cv has mean > median.
        pmf = discretized_gamma(mean=100.0, cv=0.8, dt=0.5)
        assert pmf.mean() > pmf.quantile(0.5)


class TestNormal:
    def test_moments(self):
        pmf = discretized_normal(mean=40.0, std=4.0, dt=0.5)
        assert pmf.mean() == pytest.approx(40.0, rel=0.01)
        assert pmf.std() == pytest.approx(4.0, rel=0.05)

    def test_clipped_at_zero(self):
        pmf = discretized_normal(mean=1.0, std=5.0, dt=0.5)
        assert pmf.start >= 0.0

    def test_rejects_bad_std(self):
        with pytest.raises(ValueError):
            discretized_normal(10.0, 0.0, 1.0)

    def test_symmetry(self):
        pmf = discretized_normal(mean=100.0, std=5.0, dt=0.25)
        med = pmf.quantile(0.5)
        assert med == pytest.approx(100.0, abs=0.5)


class TestUniform:
    def test_moments(self):
        pmf = discretized_uniform(10.0, 20.0, dt=0.25)
        assert pmf.mean() == pytest.approx(15.0, rel=0.01)
        assert pmf.var() == pytest.approx(100.0 / 12.0, rel=0.05)

    def test_support(self):
        pmf = discretized_uniform(10.0, 20.0, dt=1.0)
        assert pmf.start >= 9.0 and pmf.stop <= 21.0

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            discretized_uniform(5.0, 5.0, 1.0)


class TestExponential:
    def test_mean(self):
        pmf = discretized_exponential(mean=30.0, dt=0.25)
        assert pmf.mean() == pytest.approx(30.0, rel=0.02)

    def test_tail_mass_controls_support(self):
        short = discretized_exponential(mean=10.0, dt=0.5, tail_mass=1e-2)
        long = discretized_exponential(mean=10.0, dt=0.5, tail_mass=1e-6)
        assert long.stop > short.stop

    def test_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            discretized_exponential(-1.0, 1.0)

    def test_memoryless_head(self):
        # P[X <= mean] for an exponential is 1 - e^-1 ~ 0.632.
        pmf = discretized_exponential(mean=20.0, dt=0.1)
        assert pmf.prob_at_most(20.0) == pytest.approx(1 - np.exp(-1), abs=0.01)


class TestGridAlignment:
    def test_all_laws_share_grid_step(self):
        dt = 2.5
        laws = [
            discretized_gamma(100.0, 0.2, dt),
            discretized_normal(100.0, 10.0, dt),
            discretized_uniform(50.0, 150.0, dt),
            discretized_exponential(100.0, dt),
        ]
        for pmf in laws:
            assert pmf.dt == pytest.approx(dt)

    def test_bin_centers_half_offset(self):
        # Edges at multiples of dt put centers at (k + 0.5) * dt.
        pmf = discretized_uniform(0.0, 10.0, dt=1.0)
        frac = (pmf.start / pmf.dt) % 1.0
        assert frac == pytest.approx(0.5)
