"""Property-based tests for the pmf *algebra* (hypothesis).

Complements ``test_properties.py`` (moment identities, conditioning):
here the algebraic laws — commutativity/associativity of convolution on
the shared grid, normalization as an invariant of every operation, CDF
shape, and ``convolve_many`` agreeing with a left fold — which the
robustness model silently assumes every time it chains queue
predictions.  Runs derandomized under the ``ci`` hypothesis profile
(see ``tests/conftest.py``), keeping tier-1 deterministic.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stoch.ops import convolve, convolve_many, shift, truncate_below
from repro.stoch.pmf import PMF


@st.composite
def grid_pmfs(draw, max_len: int = 16, dt: float = 1.0):
    """Arbitrary pmfs on a shared unit grid with positive mass."""
    n = draw(st.integers(min_value=1, max_value=max_len))
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    if sum(weights) <= 0.0:
        weights = [w + 0.125 for w in weights]
    start = draw(st.floats(min_value=-40.0, max_value=40.0, allow_nan=False))
    return PMF(start, dt, np.array(weights))


def assert_pmfs_close(a: PMF, b: PMF, atol: float = 1e-9) -> None:
    """Equality up to floating-point noise and zero-tail compaction."""
    a, b = a.compact(), b.compact()
    assert abs(a.start - b.start) <= 1e-6, (a.start, b.start)
    assert a.probs.size == b.probs.size, (a, b)
    assert np.allclose(a.probs, b.probs, atol=atol)


class TestConvolutionAlgebra:
    @given(grid_pmfs(), grid_pmfs())
    @settings(max_examples=60)
    def test_commutative(self, a: PMF, b: PMF):
        assert_pmfs_close(convolve(a, b), convolve(b, a))

    @given(grid_pmfs(max_len=10), grid_pmfs(max_len=10), grid_pmfs(max_len=10))
    @settings(max_examples=40)
    def test_associative(self, a: PMF, b: PMF, c: PMF):
        left = convolve(convolve(a, b), c)
        right = convolve(a, convolve(b, c))
        assert_pmfs_close(left, right, atol=1e-8)

    @given(grid_pmfs())
    @settings(max_examples=40)
    def test_delta_is_identity_up_to_shift(self, a: PMF):
        out = convolve(a, PMF.delta(0.0, a.dt))
        assert_pmfs_close(out, a)

    @given(grid_pmfs(max_len=10), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30)
    def test_convolve_many_equals_left_fold(self, a: PMF, k: int):
        # k copies plus the base: fold order must not matter.
        pmfs = [a] + [PMF(a.start, a.dt, a.probs[: i + 1]) for i in range(k)]
        folded = pmfs[0]
        for nxt in pmfs[1:]:
            folded = convolve(folded, nxt)
        assert_pmfs_close(convolve_many(pmfs), folded, atol=1e-8)

    @given(grid_pmfs())
    @settings(max_examples=30)
    def test_convolve_many_single_is_identity(self, a: PMF):
        assert convolve_many([a]) is a


class TestNormalizationInvariants:
    @given(grid_pmfs(), grid_pmfs())
    @settings(max_examples=60)
    def test_convolve_preserves_mass(self, a: PMF, b: PMF):
        assert np.isclose(convolve(a, b).total_mass(), 1.0, atol=1e-9)

    @given(grid_pmfs(), st.floats(min_value=-75.0, max_value=75.0, allow_nan=False))
    @settings(max_examples=60)
    def test_shift_preserves_mass(self, a: PMF, offset: float):
        assert np.isclose(shift(a, offset).total_mass(), 1.0, atol=1e-12)

    @given(grid_pmfs(), st.floats(min_value=-80.0, max_value=80.0, allow_nan=False))
    @settings(max_examples=80)
    def test_truncate_renormalizes(self, a: PMF, t: float):
        out = truncate_below(a, t)
        assert np.isclose(out.total_mass(), 1.0, atol=1e-9)
        assert np.all(out.probs >= 0.0)

    @given(grid_pmfs())
    @settings(max_examples=40)
    def test_compact_preserves_mass_and_mean(self, a: PMF):
        out = a.compact()
        assert np.isclose(out.total_mass(), 1.0, atol=1e-9)
        assert np.isclose(out.mean(), a.mean(), rtol=1e-9, atol=1e-6)


class TestCdfShape:
    @given(grid_pmfs())
    @settings(max_examples=60)
    def test_cdf_monotone_nondecreasing(self, a: PMF):
        cdf = a.cdf
        assert np.all(np.diff(cdf) >= -1e-15)

    @given(grid_pmfs())
    @settings(max_examples=60)
    def test_cdf_ends_at_one(self, a: PMF):
        assert np.isclose(a.cdf[-1], 1.0, atol=1e-9)

    @given(grid_pmfs())
    @settings(max_examples=40)
    def test_cdf_bounded_by_unit_interval(self, a: PMF):
        cdf = a.cdf
        assert np.all(cdf >= -1e-15)
        assert np.all(cdf <= 1.0 + 1e-9)

    @given(grid_pmfs(), grid_pmfs())
    @settings(max_examples=40)
    def test_convolution_cdf_monotone_and_normalized(self, a: PMF, b: PMF):
        out = convolve(a, b)
        cdf = out.cdf
        assert np.all(np.diff(cdf) >= -1e-15)
        assert np.isclose(cdf[-1], 1.0, atol=1e-9)
