"""Tests for the PMF value type (repro.stoch.pmf)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stoch.pmf import PMF


class TestConstruction:
    def test_normalizes_by_default(self):
        pmf = PMF(0.0, 1.0, [2.0, 2.0])
        assert pmf.total_mass() == pytest.approx(1.0)
        assert np.allclose(pmf.probs, [0.5, 0.5])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PMF(0.0, 1.0, [])

    def test_rejects_negative_probs(self):
        with pytest.raises(ValueError):
            PMF(0.0, 1.0, [0.5, -0.1])

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            PMF(0.0, 1.0, [0.0, 0.0])

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            PMF(0.0, 0.0, [1.0])

    def test_rejects_nan_start(self):
        with pytest.raises(ValueError):
            PMF(float("nan"), 1.0, [1.0])

    def test_rejects_unnormalized_when_normalize_false(self):
        with pytest.raises(ValueError):
            PMF(0.0, 1.0, [0.3, 0.3], normalize=False)

    def test_accepts_normalized_when_normalize_false(self):
        pmf = PMF(0.0, 1.0, [0.25, 0.75], normalize=False)
        assert pmf.total_mass() == pytest.approx(1.0)

    def test_probs_are_readonly(self):
        pmf = PMF(0.0, 1.0, [0.5, 0.5])
        with pytest.raises(ValueError):
            pmf.probs[0] = 1.0

    def test_instances_immutable(self):
        pmf = PMF(0.0, 1.0, [1.0])
        with pytest.raises(AttributeError):
            pmf.start = 3.0  # type: ignore[misc]

    def test_does_not_mutate_input(self):
        arr = np.array([2.0, 2.0])
        PMF(0.0, 1.0, arr)
        assert np.array_equal(arr, [2.0, 2.0])


class TestDelta:
    def test_all_mass_at_time(self):
        d = PMF.delta(5.5, 2.0)
        assert len(d) == 1
        assert d.mean() == pytest.approx(5.5)
        assert d.prob_at_most(5.5) == pytest.approx(1.0)
        assert d.prob_at_most(5.4) == 0.0

    def test_var_zero(self):
        assert PMF.delta(3.0, 1.0).var() == 0.0


class TestFromMapping:
    def test_round_trip(self):
        pmf = PMF.from_mapping({0.0: 0.25, 2.0: 0.75}, dt=1.0)
        assert pmf.start == 0.0
        assert np.allclose(pmf.probs, [0.25, 0.0, 0.75])

    def test_rejects_off_grid(self):
        with pytest.raises(ValueError):
            PMF.from_mapping({0.0: 0.5, 1.3: 0.5}, dt=1.0)

    def test_rejects_empty_mapping(self):
        with pytest.raises(ValueError):
            PMF.from_mapping({}, dt=1.0)


class TestMoments:
    def test_mean_two_point(self):
        pmf = PMF(0.0, 1.0, [0.5, 0.0, 0.5])  # mass at 0 and 2
        assert pmf.mean() == pytest.approx(1.0)

    def test_mean_with_offset(self):
        pmf = PMF(10.0, 1.0, [0.5, 0.0, 0.5])
        assert pmf.mean() == pytest.approx(11.0)

    def test_var_two_point(self):
        pmf = PMF(0.0, 1.0, [0.5, 0.0, 0.5])
        assert pmf.var() == pytest.approx(1.0)
        assert pmf.std() == pytest.approx(1.0)

    def test_var_shift_invariant(self):
        a = PMF(0.0, 2.0, [0.2, 0.3, 0.5])
        b = PMF(100.0, 2.0, [0.2, 0.3, 0.5])
        assert a.var() == pytest.approx(b.var())


class TestCDF:
    def test_cdf_cached_and_monotone(self):
        pmf = PMF(0.0, 1.0, [0.1, 0.2, 0.3, 0.4])
        cdf = pmf.cdf
        assert cdf is pmf.cdf  # cached object
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_prob_at_most_before_support(self):
        pmf = PMF(5.0, 1.0, [1.0])
        assert pmf.prob_at_most(4.9) == 0.0

    def test_prob_at_most_inclusive_at_impulse(self):
        pmf = PMF(0.0, 1.0, [0.4, 0.6])
        assert pmf.prob_at_most(0.0) == pytest.approx(0.4)
        assert pmf.prob_at_most(1.0) == pytest.approx(1.0)

    def test_prob_at_most_between_impulses(self):
        pmf = PMF(0.0, 1.0, [0.4, 0.6])
        assert pmf.prob_at_most(0.5) == pytest.approx(0.4)

    def test_prob_at_most_beyond_support(self):
        pmf = PMF(0.0, 1.0, [0.4, 0.6])
        assert pmf.prob_at_most(99.0) == pytest.approx(1.0)

    def test_prob_greater_complements(self):
        pmf = PMF(0.0, 1.0, [0.4, 0.6])
        assert pmf.prob_greater(0.0) == pytest.approx(0.6)


class TestQuantile:
    def test_quantile_endpoints(self):
        pmf = PMF(0.0, 1.0, [0.25, 0.25, 0.5])
        assert pmf.quantile(0.0) == pytest.approx(0.0)
        assert pmf.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_interior(self):
        pmf = PMF(0.0, 1.0, [0.25, 0.25, 0.5])
        assert pmf.quantile(0.3) == pytest.approx(1.0)
        assert pmf.quantile(0.5) == pytest.approx(1.0)
        assert pmf.quantile(0.51) == pytest.approx(2.0)

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            PMF.delta(0.0, 1.0).quantile(1.5)

    def test_quantile_inverse_of_cdf(self):
        pmf = PMF(0.0, 0.5, [0.1, 0.2, 0.3, 0.4])
        for q in (0.05, 0.1, 0.3, 0.6, 0.99):
            t = pmf.quantile(q)
            assert pmf.prob_at_most(t) >= q - 1e-12


class TestCompact:
    def test_trims_zero_tails(self):
        pmf = PMF(0.0, 1.0, [0.0, 0.5, 0.5, 0.0, 0.0])
        c = pmf.compact()
        assert c.start == pytest.approx(1.0)
        assert len(c) == 2

    def test_keeps_interior_zeros(self):
        pmf = PMF(0.0, 1.0, [0.5, 0.0, 0.5])
        c = pmf.compact()
        assert len(c) == 3

    def test_noop_returns_self(self):
        pmf = PMF(0.0, 1.0, [0.5, 0.5])
        assert pmf.compact() is pmf


class TestEquality:
    def test_equal_pmfs(self):
        a = PMF(1.0, 0.5, [0.3, 0.7])
        b = PMF(1.0, 0.5, [0.3, 0.7])
        assert a == b

    def test_different_offset_unequal(self):
        assert PMF(0.0, 1.0, [1.0]) != PMF(1.0, 1.0, [1.0])

    def test_non_pmf_comparison(self):
        assert PMF(0.0, 1.0, [1.0]) != "pmf"

    def test_times_and_stop(self):
        pmf = PMF(2.0, 0.5, [0.5, 0.5])
        assert np.allclose(pmf.times, [2.0, 2.5])
        assert pmf.stop == pytest.approx(2.5)

    def test_repr_contains_mean(self):
        assert "mean" in repr(PMF(0.0, 1.0, [1.0]))
