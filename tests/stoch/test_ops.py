"""Tests for pmf operations (repro.stoch.ops)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stoch.ops import (
    convolve,
    convolve_many,
    expectation_of_sum,
    prob_sum_at_most,
    shift,
    truncate_below,
)
from repro.stoch.pmf import PMF


def coin(start: float = 0.0) -> PMF:
    """Fair mass at start and start+1."""
    return PMF(start, 1.0, [0.5, 0.5])


class TestConvolve:
    def test_two_coins(self):
        # Sum of two fair {0,1} variables: {0: .25, 1: .5, 2: .25}.
        out = convolve(coin(), coin())
        assert out.start == pytest.approx(0.0)
        assert np.allclose(out.probs, [0.25, 0.5, 0.25])

    def test_offsets_add(self):
        out = convolve(coin(3.0), coin(10.0))
        assert out.start == pytest.approx(13.0)

    def test_mean_additivity(self):
        a = PMF(0.0, 0.5, [0.2, 0.3, 0.5])
        b = PMF(2.5, 0.5, [0.6, 0.4])
        out = convolve(a, b)
        assert out.mean() == pytest.approx(a.mean() + b.mean())

    def test_variance_additivity(self):
        a = PMF(0.0, 0.5, [0.2, 0.3, 0.5])
        b = PMF(2.5, 0.5, [0.6, 0.4])
        assert convolve(a, b).var() == pytest.approx(a.var() + b.var())

    def test_commutative(self):
        a = PMF(0.0, 1.0, [0.1, 0.9])
        b = PMF(5.0, 1.0, [0.3, 0.3, 0.4])
        assert convolve(a, b) == convolve(b, a)

    def test_delta_shifts(self):
        out = convolve(PMF.delta(4.0, 1.0), coin())
        assert out.start == pytest.approx(4.0)
        assert np.allclose(out.probs, [0.5, 0.5])

    def test_grid_mismatch_raises(self):
        with pytest.raises(ValueError):
            convolve(PMF(0.0, 1.0, [1.0, 0.0, 0.0]), PMF(0.0, 2.0, [0.5, 0.5]))

    def test_mass_conserved(self):
        a = PMF(0.0, 1.0, np.random.default_rng(0).random(20))
        b = PMF(0.0, 1.0, np.random.default_rng(1).random(30))
        assert convolve(a, b).total_mass() == pytest.approx(1.0)


class TestConvolveMany:
    def test_single(self):
        a = coin()
        assert convolve_many([a]) == a

    def test_three_way_matches_pairwise(self):
        a, b, c = coin(), coin(1.0), PMF(0.0, 1.0, [0.2, 0.3, 0.5])
        assert convolve_many([a, b, c]) == convolve(convolve(a, b), c)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            convolve_many([])

    def test_order_invariant(self):
        a, b, c = coin(), PMF(0.0, 1.0, [0.2, 0.8]), PMF(1.0, 1.0, [0.6, 0.4])
        assert convolve_many([a, b, c]) == convolve_many([c, a, b])


class TestShift:
    def test_shift_moves_start(self):
        out = shift(coin(), 7.5)
        assert out.start == pytest.approx(7.5)
        assert np.allclose(out.probs, [0.5, 0.5])

    def test_zero_shift_returns_same(self):
        a = coin()
        assert shift(a, 0.0) is a

    def test_negative_shift(self):
        assert shift(coin(5.0), -5.0).start == pytest.approx(0.0)


class TestTruncateBelow:
    def test_noop_when_before_support(self):
        a = coin(10.0)
        assert truncate_below(a, 5.0) is a

    def test_removes_past_and_renormalizes(self):
        pmf = PMF(0.0, 1.0, [0.25, 0.25, 0.5])
        out = truncate_below(pmf, 1.0)
        # impulse at 0 removed; {1: 1/3, 2: 2/3}
        assert out.start == pytest.approx(1.0)
        assert np.allclose(out.probs, [1 / 3, 2 / 3])

    def test_impulse_at_cut_survives(self):
        pmf = PMF(0.0, 1.0, [0.5, 0.5])
        out = truncate_below(pmf, 1.0)
        assert out.start == pytest.approx(1.0)
        assert out.total_mass() == pytest.approx(1.0)

    def test_cut_between_impulses(self):
        pmf = PMF(0.0, 1.0, [0.5, 0.5])
        out = truncate_below(pmf, 0.5)
        assert out.start == pytest.approx(1.0)

    def test_all_mass_past_degenerates_to_now(self):
        pmf = PMF(0.0, 1.0, [0.5, 0.5])
        out = truncate_below(pmf, 42.0)
        assert len(out) == 1
        assert out.mean() == pytest.approx(42.0)

    def test_conditional_distribution_is_correct(self):
        # P[X = x | X >= t] = P[X = x] / P[X >= t]
        probs = np.array([0.1, 0.2, 0.3, 0.4])
        pmf = PMF(0.0, 1.0, probs)
        out = truncate_below(pmf, 2.0)
        tail = probs[2:] / probs[2:].sum()
        assert np.allclose(out.probs, tail)


class TestProbSumAtMost:
    def test_matches_explicit_convolution(self):
        rng = np.random.default_rng(3)
        a = PMF(2.0, 1.0, rng.random(15))
        b = PMF(5.0, 1.0, rng.random(9))
        conv = convolve(a, b)
        for d in (6.0, 9.5, 12.0, 20.0, 40.0):
            assert prob_sum_at_most(a, b, d) == pytest.approx(
                conv.prob_at_most(d), abs=1e-12
            )

    def test_zero_below_joint_support(self):
        assert prob_sum_at_most(coin(5.0), coin(5.0), 9.0) == 0.0

    def test_one_above_joint_support(self):
        assert prob_sum_at_most(coin(), coin(), 10.0) == pytest.approx(1.0)

    def test_with_delta_ready(self):
        ready = PMF.delta(10.0, 1.0)
        ex = PMF(0.0, 1.0, [0.5, 0.5])
        # completion = 10 + {0, 1}
        assert prob_sum_at_most(ready, ex, 10.0) == pytest.approx(0.5)
        assert prob_sum_at_most(ready, ex, 11.0) == pytest.approx(1.0)

    def test_grid_mismatch_raises(self):
        with pytest.raises(ValueError):
            prob_sum_at_most(PMF.delta(0.0, 1.0), PMF.delta(0.0, 2.0), 1.0)


class TestExpectationOfSum:
    def test_linearity(self):
        a = PMF(0.0, 1.0, [0.5, 0.5])
        b = PMF(3.0, 1.0, [0.25, 0.75])
        assert expectation_of_sum([a, b]) == pytest.approx(a.mean() + b.mean())

    def test_empty_sum_is_zero(self):
        assert expectation_of_sum([]) == 0.0
