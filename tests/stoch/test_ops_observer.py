"""Tests for the pmf-operation observer hook (repro.stoch.ops)."""

from __future__ import annotations

import pytest

from repro.stoch.ops import (
    convolve,
    prob_sum_at_most,
    set_op_observer,
    truncate_below,
)
from repro.stoch.pmf import PMF


@pytest.fixture()
def calls():
    """Install a recording observer for the test, always restored."""
    recorded: list[tuple[str, int]] = []
    previous = set_op_observer(lambda op, n: recorded.append((op, n)))
    assert previous is None  # no other observer may leak between tests
    yield recorded
    set_op_observer(None)


def coin(start: float = 0.0) -> PMF:
    return PMF(start, 1.0, [0.5, 0.5])


class TestObserverInstallation:
    def test_set_returns_previous(self):
        first = lambda op, n: None  # noqa: E731
        second = lambda op, n: None  # noqa: E731
        assert set_op_observer(first) is None
        assert set_op_observer(second) is first
        assert set_op_observer(None) is second

    def test_unobserved_ops_still_work(self):
        assert set_op_observer(None) is None
        out = convolve(coin(), coin())
        assert len(out) == 3


class TestObservedOps:
    def test_convolve_reports_result_grid_size(self, calls):
        convolve(coin(), coin())
        assert calls == [("convolve", 3)]

    def test_delta_shortcut_not_counted(self, calls):
        # Delta convolution degenerates to a shift; no materialized grid.
        convolve(PMF.delta(4.0, 1.0), coin())
        assert calls == []

    def test_truncate_below_counted(self, calls):
        truncate_below(PMF(0.0, 1.0, [0.25, 0.25, 0.5]), 1.5)
        assert [op for op, _ in calls] == ["truncate_below"]

    def test_truncate_noop_not_counted(self, calls):
        # Cut below the support: early return, nothing materialized.
        truncate_below(coin(5.0), 0.0)
        assert calls == []

    def test_prob_sum_at_most_counted(self, calls):
        prob_sum_at_most(coin(), coin(), 1.0)
        assert [op for op, _ in calls] == ["prob_sum_at_most"]

    def test_observer_does_not_change_results(self, calls):
        a, b = coin(), coin(3.0)
        observed = convolve(a, b)
        set_op_observer(None)
        assert convolve(a, b) == observed
