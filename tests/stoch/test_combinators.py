"""Tests for pmf combinators (repro.stoch.combinators)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stoch.combinators import expected_extreme, max_of, min_of, mixture
from repro.stoch.pmf import PMF
from repro.stoch.samplers import sample_pmf_many


def die(faces: int = 4, start: float = 0.0) -> PMF:
    return PMF(start, 1.0, np.full(faces, 1.0 / faces))


class TestMixture:
    def test_uniform_mixture_mean(self):
        a, b = PMF.delta(0.0, 1.0), PMF.delta(10.0, 1.0)
        mix = mixture([a, b])
        assert mix.mean() == pytest.approx(5.0)

    def test_weighted_mixture(self):
        a, b = PMF.delta(0.0, 1.0), PMF.delta(10.0, 1.0)
        mix = mixture([a, b], weights=[3.0, 1.0])
        assert mix.mean() == pytest.approx(2.5)

    def test_mass_conserved(self):
        mix = mixture([die(4), die(6, start=2.0)])
        assert mix.total_mass() == pytest.approx(1.0)

    def test_single_component_identity(self):
        d = die(6)
        assert mixture([d]).mean() == pytest.approx(d.mean())

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            mixture([die(4)], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            mixture([die(4)], weights=[0.0])

    def test_rejects_grid_mismatch(self):
        with pytest.raises(ValueError):
            mixture([die(4), PMF(0.0, 2.0, [0.5, 0.5])])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mixture([])


class TestMaxOf:
    def test_max_of_two_deltas(self):
        out = max_of([PMF.delta(3.0, 1.0), PMF.delta(7.0, 1.0)])
        assert len(out) == 1
        assert out.mean() == pytest.approx(7.0)

    def test_max_of_two_coins(self):
        coin = PMF(0.0, 1.0, [0.5, 0.5])
        out = max_of([coin, coin])
        # P[max=0] = 1/4, P[max=1] = 3/4.
        assert out.prob_at_most(0.0) == pytest.approx(0.25)
        assert out.mean() == pytest.approx(0.75)

    def test_max_dominates_components(self):
        a, b = die(6), die(4, start=1.0)
        out = max_of([a, b])
        assert out.mean() >= max(a.mean(), b.mean()) - 1e-9

    def test_against_monte_carlo(self, rng):
        a, b, c = die(6), die(8, start=1.0), die(3, start=2.0)
        out = max_of([a, b, c])
        samples = np.maximum.reduce(
            [sample_pmf_many(p, rng, 40_000) for p in (a, b, c)]
        )
        assert out.mean() == pytest.approx(float(samples.mean()), abs=0.05)


class TestMinOf:
    def test_min_of_two_deltas(self):
        out = min_of([PMF.delta(3.0, 1.0), PMF.delta(7.0, 1.0)])
        assert out.mean() == pytest.approx(3.0)

    def test_min_of_two_coins(self):
        coin = PMF(0.0, 1.0, [0.5, 0.5])
        out = min_of([coin, coin])
        # P[min=0] = 3/4.
        assert out.prob_at_most(0.0) == pytest.approx(0.75)

    def test_min_below_components(self):
        a, b = die(6), die(4, start=1.0)
        out = min_of([a, b])
        assert out.mean() <= min(a.mean(), b.mean()) + 1e-9

    def test_against_monte_carlo(self, rng):
        a, b = die(6), die(8, start=1.0)
        out = min_of([a, b])
        samples = np.minimum(
            sample_pmf_many(a, rng, 40_000), sample_pmf_many(b, rng, 40_000)
        )
        assert out.mean() == pytest.approx(float(samples.mean()), abs=0.05)


class TestExpectedExtreme:
    def test_dispatch(self):
        pmfs = [die(4), die(6)]
        assert expected_extreme(pmfs, "max") == pytest.approx(max_of(pmfs).mean())
        assert expected_extreme(pmfs, "min") == pytest.approx(min_of(pmfs).mean())

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            expected_extreme([die(4)], "median")


@st.composite
def pmf_lists(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    out = []
    for _ in range(n):
        size = draw(st.integers(min_value=1, max_value=10))
        weights = draw(
            st.lists(
                st.floats(min_value=0.01, max_value=1.0),
                min_size=size,
                max_size=size,
            )
        )
        start = draw(st.integers(min_value=-5, max_value=5))
        out.append(PMF(float(start), 1.0, np.array(weights)))
    return out


@given(pmf_lists())
@settings(max_examples=40, deadline=None)
def test_extremes_bracket_components(pmfs):
    mx, mn = max_of(pmfs), min_of(pmfs)
    assert mx.total_mass() == pytest.approx(1.0)
    assert mn.total_mass() == pytest.approx(1.0)
    assert mn.mean() <= min(p.mean() for p in pmfs) + 1e-6
    assert mx.mean() >= max(p.mean() for p in pmfs) - 1e-6
    assert mn.mean() <= mx.mean() + 1e-9


@given(pmf_lists())
@settings(max_examples=40, deadline=None)
def test_mixture_mean_is_weighted_average(pmfs):
    mix = mixture(pmfs)
    expected = float(np.mean([p.mean() for p in pmfs]))
    assert mix.mean() == pytest.approx(expected, abs=1e-6)
