"""Property-based tests (hypothesis) for the pmf algebra invariants.

These are the paper-critical invariants: convolution must behave like the
sum of independent random variables, truncation like conditioning on
``X >= t``, and CDF queries like exact tail sums — across arbitrary
shapes, offsets and grid steps.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stoch.grid import regrid
from repro.stoch.ops import convolve, prob_sum_at_most, shift, truncate_below
from repro.stoch.pmf import PMF


@st.composite
def pmfs(draw, max_len: int = 24, dt: float | None = None):
    """Arbitrary grid pmfs with positive mass."""
    n = draw(st.integers(min_value=1, max_value=max_len))
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    if sum(weights) <= 0.0:
        weights = [w + 0.1 for w in weights]
    step = dt if dt is not None else draw(st.sampled_from([0.5, 1.0, 2.0]))
    start = draw(st.floats(min_value=-50.0, max_value=50.0, allow_nan=False))
    return PMF(start, step, np.array(weights))


@given(pmfs(dt=1.0), pmfs(dt=1.0))
@settings(max_examples=60, deadline=None)
def test_convolution_mean_additivity(a: PMF, b: PMF):
    out = convolve(a, b)
    assert np.isclose(out.mean(), a.mean() + b.mean(), rtol=1e-9, atol=1e-7)


@given(pmfs(dt=1.0), pmfs(dt=1.0))
@settings(max_examples=60, deadline=None)
def test_convolution_variance_additivity(a: PMF, b: PMF):
    out = convolve(a, b)
    assert np.isclose(out.var(), a.var() + b.var(), rtol=1e-7, atol=1e-6)


@given(pmfs(dt=1.0), pmfs(dt=1.0))
@settings(max_examples=60, deadline=None)
def test_convolution_mass_conservation(a: PMF, b: PMF):
    assert np.isclose(convolve(a, b).total_mass(), 1.0, atol=1e-9)


@given(pmfs(), st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_shift_preserves_shape(pmf: PMF, offset: float):
    out = shift(pmf, offset)
    assert np.allclose(out.probs, pmf.probs)
    assert np.isclose(out.mean(), pmf.mean() + offset, atol=1e-6)


@given(pmfs(), st.floats(min_value=-60.0, max_value=120.0, allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_truncate_is_conditioning(pmf: PMF, t: float):
    out = truncate_below(pmf, t)
    assert np.isclose(out.total_mass(), 1.0, atol=1e-9)
    # No surviving impulse lies strictly before t (up to fp tolerance).
    assert out.start >= t - 1e-6 or out.start >= pmf.start
    if t <= pmf.start:
        assert out is pmf
    tail = pmf.prob_greater(t - 1e-9)
    if tail > 1e-9 and t > pmf.start:
        # Conditioning: survivor masses scale by 1 / P[X >= t].
        assert out.mean() >= pmf.mean() - 1e-6


@given(pmfs(dt=1.0), pmfs(dt=1.0), st.floats(min_value=-100, max_value=200))
@settings(max_examples=80, deadline=None)
def test_prob_sum_matches_convolution(a: PMF, b: PMF, d: float):
    direct = prob_sum_at_most(a, b, d)
    via_conv = convolve(a, b).prob_at_most(d)
    assert np.isclose(direct, via_conv, atol=1e-9)


@given(pmfs(dt=1.0), pmfs(dt=1.0))
@settings(max_examples=40, deadline=None)
def test_prob_sum_monotone_in_deadline(a: PMF, b: PMF):
    ds = np.linspace(a.start + b.start - 2, a.stop + b.stop + 2, 12)
    vals = [prob_sum_at_most(a, b, float(d)) for d in ds]
    assert all(x <= y + 1e-12 for x, y in zip(vals, vals[1:]))


@given(pmfs(), st.sampled_from([0.5, 1.5, 3.0, 7.0]))
@settings(max_examples=60, deadline=None)
def test_regrid_conserves_mass_and_mean(pmf: PMF, new_dt: float):
    out = regrid(pmf, new_dt)
    assert np.isclose(out.total_mass(), 1.0, atol=1e-9)
    assert np.isclose(out.mean(), pmf.mean(), rtol=1e-9, atol=1e-6)


@given(pmfs(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_quantile_cdf_galois(pmf: PMF, q: float):
    t = pmf.quantile(q)
    assert pmf.prob_at_most(t) >= q - 1e-9


@given(pmfs())
@settings(max_examples=40, deadline=None)
def test_cdf_bounds(pmf: PMF):
    assert pmf.prob_at_most(pmf.start - 1.0) == 0.0
    assert np.isclose(pmf.prob_at_most(pmf.stop + 1.0), 1.0, atol=1e-9)
