"""Tests for grid utilities (repro.stoch.grid)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stoch.grid import regrid, snap
from repro.stoch.distributions import discretized_gamma
from repro.stoch.pmf import PMF


class TestSnap:
    def test_exact_multiple(self):
        assert snap(10.0, 2.5) == 10.0

    def test_rounds_to_nearest(self):
        assert snap(10.9, 2.0) == 10.0
        assert snap(11.1, 2.0) == 12.0

    def test_negative_values(self):
        assert snap(-3.2, 2.0) == -4.0


class TestRegrid:
    def test_mass_conserved(self):
        pmf = discretized_gamma(100.0, 0.3, dt=2.0)
        out = regrid(pmf, 7.0)
        assert out.total_mass() == pytest.approx(1.0)

    def test_mean_conserved(self):
        pmf = discretized_gamma(100.0, 0.3, dt=2.0)
        out = regrid(pmf, 5.0)
        assert out.mean() == pytest.approx(pmf.mean(), rel=1e-9)

    def test_new_dt(self):
        out = regrid(PMF(0.0, 1.0, [0.5, 0.5]), 0.25)
        assert out.dt == pytest.approx(0.25)

    def test_finer_grid_preserves_impulses(self):
        pmf = PMF(0.0, 1.0, [0.5, 0.5])
        out = regrid(pmf, 0.5)
        # Original impulses at 0 and 1 are multiples of 0.5: exact.
        assert out.prob_at_most(0.0) == pytest.approx(0.5)
        assert out.prob_at_most(0.9) == pytest.approx(0.5)

    def test_coarser_grid_merges(self):
        pmf = PMF(0.0, 1.0, [0.25, 0.25, 0.25, 0.25])
        out = regrid(pmf, 3.0)
        assert len(out) <= 3

    def test_offgrid_impulse_splits_linearly(self):
        # Impulse at 1.0 regridded to dt=4: splits 0.75 to 0, 0.25 to 4.
        pmf = PMF.delta(1.0, 1.0)
        out = regrid(pmf, 4.0)
        assert out.mean() == pytest.approx(1.0)
        assert out.prob_at_most(0.0) == pytest.approx(0.75)

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            regrid(PMF.delta(0.0, 1.0), 0.0)

    def test_variance_grows_boundedly(self):
        # Linear mass splitting adds at most (new_dt^2)/4 of variance.
        pmf = discretized_gamma(200.0, 0.2, dt=1.0)
        out = regrid(pmf, 10.0)
        assert out.var() <= pmf.var() + 10.0**2
        assert out.var() >= pmf.var() - 1e-6
