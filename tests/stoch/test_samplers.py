"""Tests for pmf sampling (repro.stoch.samplers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stoch.distributions import discretized_gamma
from repro.stoch.pmf import PMF
from repro.stoch.samplers import sample_pmf, sample_pmf_many


class TestSamplePMF:
    def test_delta_always_returns_its_time(self, rng):
        d = PMF.delta(17.0, 1.0)
        assert all(sample_pmf(d, rng) == 17.0 for _ in range(20))

    def test_samples_lie_on_grid(self, rng):
        pmf = PMF(3.0, 0.5, [0.2, 0.3, 0.5])
        for _ in range(50):
            x = sample_pmf(pmf, rng)
            k = (x - pmf.start) / pmf.dt
            assert k == pytest.approx(round(k))
            assert pmf.start <= x <= pmf.stop

    def test_deterministic_under_seed(self):
        pmf = PMF(0.0, 1.0, [0.3, 0.3, 0.4])
        a = [sample_pmf(pmf, np.random.default_rng(5)) for _ in range(1)]
        b = [sample_pmf(pmf, np.random.default_rng(5)) for _ in range(1)]
        assert a == b

    def test_empirical_mean_converges(self, rng):
        pmf = discretized_gamma(mean=200.0, cv=0.25, dt=2.0)
        xs = sample_pmf_many(pmf, rng, 20_000)
        assert xs.mean() == pytest.approx(pmf.mean(), rel=0.02)

    def test_empirical_frequencies(self, rng):
        pmf = PMF(0.0, 1.0, [0.7, 0.3])
        xs = sample_pmf_many(pmf, rng, 20_000)
        share0 = float(np.mean(xs == 0.0))
        assert share0 == pytest.approx(0.7, abs=0.02)


class TestSampleMany:
    def test_shape(self, rng):
        pmf = PMF(0.0, 1.0, [0.5, 0.5])
        assert sample_pmf_many(pmf, rng, 13).shape == (13,)

    def test_zero_size(self, rng):
        assert sample_pmf_many(PMF.delta(1.0, 1.0), rng, 0).size == 0

    def test_matches_scalar_path_distribution(self):
        pmf = PMF(0.0, 1.0, [0.25, 0.25, 0.5])
        many = sample_pmf_many(pmf, np.random.default_rng(9), 5)
        scalar_rng = np.random.default_rng(9)
        singles = np.array([sample_pmf(pmf, scalar_rng) for _ in range(5)])
        assert np.array_equal(many, singles)
