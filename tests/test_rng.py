"""Tests for hierarchical random streams (repro.rng)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import rng as rng_mod


class TestKeyToInts:
    def test_string_key_is_stable(self):
        assert rng_mod.key_to_ints("arrivals") == rng_mod.key_to_ints("arrivals")

    def test_different_strings_differ(self):
        assert rng_mod.key_to_ints("a") != rng_mod.key_to_ints("b")

    def test_small_int_key(self):
        assert rng_mod.key_to_ints(7) == (7,)

    def test_zero_key(self):
        assert rng_mod.key_to_ints(0) == (0,)

    def test_large_int_key_splits_words(self):
        words = rng_mod.key_to_ints(2**40 + 5)
        assert len(words) == 2
        assert words[0] == (2**40 + 5) % 2**32

    def test_numpy_integer_accepted(self):
        assert rng_mod.key_to_ints(np.int64(3)) == (3,)

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            rng_mod.key_to_ints(-1)

    def test_float_key_rejected(self):
        with pytest.raises(TypeError):
            rng_mod.key_to_ints(1.5)  # type: ignore[arg-type]


class TestStream:
    def test_same_keys_same_draws(self):
        a = rng_mod.stream(42, "x", 1).random(5)
        b = rng_mod.stream(42, "x", 1).random(5)
        assert np.array_equal(a, b)

    def test_different_master_seed_differs(self):
        a = rng_mod.stream(1, "x").random(5)
        b = rng_mod.stream(2, "x").random(5)
        assert not np.array_equal(a, b)

    def test_different_keys_independent(self):
        a = rng_mod.stream(42, "x").random(5)
        b = rng_mod.stream(42, "y").random(5)
        assert not np.array_equal(a, b)

    def test_key_order_matters(self):
        a = rng_mod.stream(42, "a", "b").random(3)
        b = rng_mod.stream(42, "b", "a").random(3)
        assert not np.array_equal(a, b)

    def test_no_keys_is_valid(self):
        assert rng_mod.stream(42).random() == rng_mod.stream(42).random()


class TestSpawnTrialSeed:
    def test_deterministic(self):
        assert rng_mod.spawn_trial_seed(9, 3) == rng_mod.spawn_trial_seed(9, 3)

    def test_distinct_across_trials(self):
        seeds = {rng_mod.spawn_trial_seed(9, i) for i in range(100)}
        assert len(seeds) == 100

    def test_distinct_across_masters(self):
        assert rng_mod.spawn_trial_seed(1, 0) != rng_mod.spawn_trial_seed(2, 0)

    def test_usable_as_master_seed(self):
        child = rng_mod.spawn_trial_seed(5, 0)
        g = rng_mod.stream(child, "arrivals")
        assert 0.0 <= g.random() < 1.0
