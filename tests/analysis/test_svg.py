"""Tests for SVG box plots (repro.analysis.svg)."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.analysis.svg import boxplot_svg, save_boxplot_svg

SAMPLES = {
    "none": np.array([370.0, 380.0, 360.0, 375.0, 390.0]),
    "en+rob": np.array([230.0, 240.0, 220.0, 226.0, 250.0]),
}


class TestBoxplotSvg:
    def test_valid_xml(self):
        svg = boxplot_svg(SAMPLES, title="demo")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_box_per_sample(self):
        svg = boxplot_svg(SAMPLES)
        root = ET.fromstring(svg)
        ns = "{http://www.w3.org/2000/svg}"
        rects = root.findall(f"{ns}rect")
        # background + one IQR box per sample
        assert len(rects) == 1 + len(SAMPLES)

    def test_labels_present(self):
        svg = boxplot_svg(SAMPLES, title="fig demo")
        assert "fig demo" in svg
        assert "none" in svg and "en+rob" in svg

    def test_outlier_circles(self):
        samples = {"x": np.array([10.0, 11.0, 12.0, 13.0, 14.0, 200.0])}
        svg = boxplot_svg(samples)
        assert "<circle" in svg

    def test_escapes_markup(self):
        svg = boxplot_svg({"a<b": np.array([1.0, 2.0])})
        assert "a&lt;b" in svg
        ET.fromstring(svg)  # still valid XML

    def test_constant_sample(self):
        svg = boxplot_svg({"flat": np.array([5.0, 5.0, 5.0])})
        ET.fromstring(svg)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            boxplot_svg({})


class TestSaveBoxplotSvg:
    def test_writes_file(self, tmp_path):
        path = save_boxplot_svg(SAMPLES, tmp_path / "figs" / "out.svg", title="t")
        assert path.exists()
        ET.fromstring(path.read_text())
