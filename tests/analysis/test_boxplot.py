"""Tests for ASCII box plots (repro.analysis.boxplot)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.boxplot import ascii_boxplot, ascii_boxplot_group


class TestAsciiBoxplot:
    def test_contains_median_marker(self):
        out = ascii_boxplot([1, 2, 3, 4, 5], label="demo")
        assert "#" in out
        assert "demo" in out
        assert "med=3" in out

    def test_whisker_markers(self):
        out = ascii_boxplot([1, 2, 3, 4, 5])
        assert out.count("|") >= 2

    def test_constant_sample(self):
        out = ascii_boxplot([5, 5, 5])
        assert "med=5" in out

    def test_outlier_marker(self):
        out = ascii_boxplot([10, 11, 12, 13, 14, 200])
        assert "o" in out


class TestGroup:
    def test_shared_scale(self):
        samples = {
            "a": np.array([10.0, 20.0, 30.0]),
            "b": np.array([100.0, 110.0, 120.0]),
        }
        out = ascii_boxplot_group(samples, title="demo group")
        lines = out.splitlines()
        assert lines[0] == "demo group"
        assert len(lines) == 4  # title + 2 rows + axis
        assert "a" in lines[1] and "b" in lines[2]

    def test_axis_bounds(self):
        samples = {"x": np.array([10.0, 90.0])}
        out = ascii_boxplot_group(samples)
        assert "10" in out and "90" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_boxplot_group({})

    def test_rows_have_requested_width(self):
        samples = {"x": np.array([0.0, 100.0])}
        out = ascii_boxplot_group(samples, width=30)
        row = out.splitlines()[0]
        assert "[" in row and "]" in row
        inner = row[row.index("[") + 1 : row.index("]")]
        assert len(inner) == 30
