"""Tests for profile/timeline/metrics report rendering (repro.analysis.profile_report)."""

from __future__ import annotations

import pytest

from repro.analysis.profile_report import (
    metrics_tables,
    profile_table,
    span_summary,
    timeline_table,
)
from repro.obs.sinks import MetricsRegistry
from repro.obs.spans import SpanProfile, SpanRecorder
from repro.obs.timeline import TimelineSet


def x_event(name, ts, dur, pid=0, tid=0):
    return {"ph": "X", "name": name, "ts": ts, "dur": dur, "pid": pid, "tid": tid}


class TestSpanSummary:
    def test_self_time_reconstructed_from_nesting(self):
        events = [
            x_event("parent", 0.0, 100.0),
            x_event("child", 10.0, 30.0),
            x_event("child", 50.0, 20.0),
        ]
        by_name = {s.name: s for s in span_summary(events)}
        assert by_name["parent"].total_us == pytest.approx(100.0)
        assert by_name["parent"].self_us == pytest.approx(50.0)
        assert by_name["child"].count == 2
        assert by_name["child"].self_us == pytest.approx(50.0)

    def test_grandchild_charged_to_direct_parent_only(self):
        events = [
            x_event("a", 0.0, 100.0),
            x_event("b", 10.0, 50.0),
            x_event("c", 20.0, 10.0),
        ]
        by_name = {s.name: s for s in span_summary(events)}
        assert by_name["a"].self_us == pytest.approx(50.0)
        assert by_name["b"].self_us == pytest.approx(40.0)
        assert by_name["c"].self_us == pytest.approx(10.0)

    def test_tracks_are_independent(self):
        # Overlapping intervals on different (pid, tid) tracks don't nest.
        events = [x_event("a", 0.0, 100.0, pid=0), x_event("b", 10.0, 30.0, pid=1)]
        by_name = {s.name: s for s in span_summary(events)}
        assert by_name["a"].self_us == pytest.approx(100.0)
        assert by_name["b"].self_us == pytest.approx(30.0)

    def test_sorted_by_total_then_name(self):
        events = [
            x_event("bb", 0.0, 10.0),
            x_event("aa", 20.0, 10.0),
            x_event("zz", 40.0, 50.0),
        ]
        assert [s.name for s in span_summary(events)] == ["zz", "aa", "bb"]

    def test_ignores_metadata_and_malformed_events(self):
        events = [
            {"ph": "M", "name": "process_name", "pid": 0},
            {"ph": "X", "name": "no-ts"},
            x_event("ok", 0.0, 1.0),
        ]
        assert [s.name for s in span_summary(events)] == ["ok"]

    def test_agrees_with_recorder_self_time(self):
        # End-to-end: interval reconstruction matches what the recorder
        # itself computed and embedded in args.self_us.
        clock_t = iter([0.0, 1.0, 4.0, 10.0])
        rec = SpanRecorder(clock=lambda: next(clock_t))
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        profile = SpanProfile()
        profile.add_stream(rec)
        events = profile.to_chrome_trace()["traceEvents"]
        by_name = {s.name: s for s in span_summary(events)}
        assert by_name["outer"].self_us == pytest.approx(7e6)
        assert by_name["inner"].self_us == pytest.approx(3e6)


class TestProfileTable:
    def test_renders_markdown(self):
        table = profile_table([x_event("engine.arrival", 0.0, 1500.0)])
        assert "| span" in table.splitlines()[0]
        assert "engine.arrival" in table
        assert "1.500 ms" in table

    def test_limit_truncates(self):
        events = [x_event(f"s{i}", i * 10.0, 1.0) for i in range(5)]
        table = profile_table(events, limit=2)
        assert len(table.splitlines()) == 2 + 2  # header + rule + 2 rows


class TestTimelineTable:
    def test_digest_rows(self):
        tls = TimelineSet(1.0)
        tls.add(
            {
                "stream": 0,
                "label": "trial0:SQ/none",
                "dt": 1.0,
                "num_nodes": 2,
                "t": [0.0, 1.0, 2.0],
                "busy_cores": [1, 3, 2],
                "energy_estimate": [9.0, 8.0, 7.0],
                "completed": [0, 2, 5],
                "discarded": [0, 0, 1],
                "node_depth": [[1, 0], [2, 2], [1, 1]],
            }
        )
        table = timeline_table(tls)
        row = table.splitlines()[-1]
        assert "trial0:SQ/none" in row
        for cell in ("3", "2", "3", "4", "5", "1"):
            assert cell in row


class TestMetricsTables:
    def test_counters_and_histograms(self):
        reg = MetricsRegistry()
        reg.inc("stoch.ops.convolve", 7)
        reg.observe("queue_depth", 2.0, (1.0, 4.0))
        text = metrics_tables(reg.to_dict())
        assert "## Counters" in text and "## Histograms" in text
        assert "stoch.ops.convolve" in text and "| 7" in text
        assert "queue_depth" in text

    def test_empty_registry(self):
        assert "empty" in metrics_tables(MetricsRegistry().to_dict())

    def test_cache_table_attributes_per_spec(self):
        reg = MetricsRegistry()
        reg.inc("perf.cache.hits", 90)
        reg.inc("perf.cache.misses", 10)
        reg.inc("perf.cache.hits.LL/en+rob", 60)
        reg.inc("perf.cache.misses.LL/en+rob", 10)
        reg.inc("perf.cache.hits.SQ/none", 30)
        reg.inc("perf.cache.misses.SQ/none", 0)
        text = metrics_tables(reg.to_dict())
        assert "## Kernel cache" in text
        lines = {line.split("|")[1].strip(): line for line in text.splitlines() if "|" in line}
        assert "85.7%" in lines["LL/en+rob"]
        assert "100.0%" in lines["SQ/none"]
        assert "90.0%" in lines["(total)"]
        # Rendered in the derived table only, not the generic dump.
        assert "## Counters" not in text

    def test_executor_table_derives_chunk_stats(self):
        reg = MetricsRegistry()
        reg.inc("executor.chunks_dispatched", 4)
        reg.inc("executor.trials_dispatched", 10)
        reg.inc("executor.trials_requeued", 2)
        reg.inc("executor.faults.crash", 1)
        text = metrics_tables(reg.to_dict())
        assert "## Executor" in text
        assert "mean trials/chunk" in text
        assert "2.50" in text
        assert "trials requeued" in text
        assert "faults.crash" in text

    def test_faults_table_groups_families(self):
        reg = MetricsRegistry()
        reg.inc("faults.fail.node_outage", 2)
        reg.inc("faults.recover.node_outage", 2)
        reg.inc("tasks_orphaned.remapped", 5)
        reg.inc("tasks_orphaned.lost", 1)
        reg.inc("tasks_shed.queue_depth", 7)
        reg.inc("tasks_deferred", 3)
        text = metrics_tables(reg.to_dict())
        assert "## Faults / shedding" in text
        assert "fail node_outage" in text
        assert "remapped" in text and "| 5" in text
        assert "queue_depth" in text and "| 7" in text
        assert "retry pushes" in text and "| 3" in text
        # Claimed by the derived table: kept out of the generic dump.
        assert "## Counters" not in text

    def test_fault_counters_excluded_from_generic_dump(self):
        reg = MetricsRegistry()
        reg.inc("trials_run", 4)
        reg.inc("tasks_shed.queue_depth", 2)
        text = metrics_tables(reg.to_dict())
        counters_section = text.split("## Faults / shedding")[0]
        assert "trials_run" in counters_section
        assert "tasks_shed.queue_depth" not in counters_section

    def test_no_fault_counters_no_fault_table(self):
        reg = MetricsRegistry()
        reg.inc("trials_run", 1)
        assert "## Faults" not in metrics_tables(reg.to_dict())

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            metrics_tables({"format": "repro.spans/1"})
