"""Tests for time-series views (repro.analysis.timeseries)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.timeseries import (
    active_tasks_series,
    completion_rate_series,
    cumulative_energy_series,
)
from repro.filters.chain import build_filter_chain
from repro.heuristics.shortest_queue import ShortestQueue
from repro.sim.engine import Engine


@pytest.fixture(scope="module")
def run(tiny_system):
    engine = Engine(tiny_system, ShortestQueue(), build_filter_chain("none"))
    result = engine.run()
    return engine, result


class TestCumulativeEnergy:
    def test_monotone_from_zero(self, run):
        engine, result = run
        ts, energy = cumulative_energy_series(engine.ledger, result.makespan)
        assert energy[0] == pytest.approx(0.0, abs=1e-6)
        assert np.all(np.diff(energy) >= -1e-9)

    def test_endpoint_matches_total(self, run):
        engine, result = run
        _, energy = cumulative_energy_series(engine.ledger, result.makespan)
        assert energy[-1] == pytest.approx(result.total_energy, rel=1e-9)

    def test_matches_pointwise_queries(self, run):
        engine, result = run
        ts, energy = cumulative_energy_series(engine.ledger, result.makespan, samples=50)
        for i in (10, 25, 40):
            assert energy[i] == pytest.approx(
                engine.ledger.cumulative_energy_at(float(ts[i])), rel=1e-9
            )

    def test_rejects_bad_args(self, run):
        engine, _ = run
        with pytest.raises(ValueError):
            cumulative_energy_series(engine.ledger, 0.0)
        with pytest.raises(ValueError):
            cumulative_energy_series(engine.ledger, 10.0, samples=1)


class TestActiveTasks:
    def test_bounds(self, run, tiny_system):
        _, result = run
        _, active = active_tasks_series(result)
        assert active.min() >= 0
        assert active.max() <= tiny_system.cluster.num_cores

    def test_starts_and_ends_idle(self, run):
        _, result = run
        _, active = active_tasks_series(result)
        assert active[0] == 0 or active[0] <= 2  # first arrival near t=0
        assert active[-1] == 0

    def test_requires_outcomes(self, run):
        from dataclasses import replace

        _, result = run
        with pytest.raises(ValueError):
            active_tasks_series(replace(result, outcomes=()))


class TestCompletionRate:
    def test_monotone_to_completed_count(self, run):
        _, result = run
        _, counts = completion_rate_series(result)
        assert np.all(np.diff(counts) >= 0)
        assert counts[-1] == result.completed_within

    def test_zero_at_start(self, run):
        _, result = run
        _, counts = completion_rate_series(result)
        assert counts[0] == 0
