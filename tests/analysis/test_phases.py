"""Tests for phase breakdown (repro.analysis.phases)."""

from __future__ import annotations

import pytest

from repro.analysis.phases import phase_breakdown
from repro.filters.chain import build_filter_chain
from repro.heuristics.mect import MinimumExpectedCompletionTime
from repro.sim.engine import run_trial


@pytest.fixture(scope="module")
def trial(small_system):
    result = run_trial(
        small_system, MinimumExpectedCompletionTime(), build_filter_chain("none")
    )
    return small_system, result


class TestPhaseBreakdown:
    def test_phases_partition_workload(self, trial):
        system, result = trial
        breakdown = phase_breakdown(result, system.config.workload)
        assert set(breakdown) == {"head", "lull", "tail"}
        assert sum(b.total for b in breakdown.values()) == result.num_tasks

    def test_phase_sizes_match_config(self, trial):
        system, result = trial
        cfg = system.config.workload
        breakdown = phase_breakdown(result, cfg)
        assert breakdown["head"].total == cfg.burst_head
        assert breakdown["lull"].total == cfg.lull_tasks
        assert breakdown["tail"].total == cfg.burst_tail

    def test_misses_sum_to_trial_total(self, trial):
        system, result = trial
        breakdown = phase_breakdown(result, system.config.workload)
        assert sum(b.missed for b in breakdown.values()) == result.missed
        assert sum(b.late for b in breakdown.values()) == result.late
        assert sum(b.discarded for b in breakdown.values()) == result.discarded
        assert (
            sum(b.energy_cutoff for b in breakdown.values()) == result.energy_cutoff
        )

    def test_energy_cutoff_concentrates_late(self, trial):
        # If the budget runs out, it runs out on the tail, not the head.
        system, result = trial
        breakdown = phase_breakdown(result, system.config.workload)
        if result.energy_cutoff == 0:
            pytest.skip("budget never exhausted in this draw")
        assert breakdown["tail"].energy_cutoff >= breakdown["head"].energy_cutoff

    def test_miss_fraction_bounds(self, trial):
        system, result = trial
        for b in phase_breakdown(result, system.config.workload).values():
            assert 0.0 <= b.miss_fraction <= 1.0

    def test_requires_outcomes(self, trial):
        from dataclasses import replace

        system, result = trial
        with pytest.raises(ValueError):
            phase_breakdown(replace(result, outcomes=()), system.config.workload)

    def test_str(self, trial):
        system, result = trial
        text = str(phase_breakdown(result, system.config.workload)["head"])
        assert "head:" in text and "missed" in text
