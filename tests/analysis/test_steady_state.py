"""Tests for warm-up truncation and batch-means CIs (analysis.steady_state)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.steady_state import (
    DEFAULT_METRICS,
    MSER_BATCH,
    SteadyStateSummary,
    analyze_series,
    analyze_windows,
    batch_means_ci,
    mser_truncation,
    steady_state_table,
)


def transient_series(seed: int = 0, *, warm: int = 30, steady: int = 120):
    """A decaying transient followed by stationary noise around 1.0."""
    rng = np.random.default_rng(seed)
    head = 50.0 * np.exp(-np.arange(warm) / 5.0)
    tail = rng.normal(1.0, 0.1, size=steady)
    return np.concatenate([head, tail])


class TestMserTruncation:
    def test_too_short_to_batch_twice_returns_zero(self):
        assert mser_truncation([1.0] * (2 * MSER_BATCH - 1)) == 0
        assert mser_truncation([]) == 0

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError, match="batch"):
            mser_truncation([1.0, 2.0], batch=0)

    def test_detects_constructed_transient(self):
        d = mser_truncation(transient_series())
        assert d % MSER_BATCH == 0
        assert 20 <= d <= 70

    def test_flat_series_keeps_everything(self):
        assert mser_truncation([3.0] * 100) == 0

    def test_truncation_never_exceeds_half(self):
        # A monotone ramp never settles; the bound must still hold.
        d = mser_truncation(np.arange(100, dtype=float))
        assert d <= (100 // MSER_BATCH // 2) * MSER_BATCH


class TestBatchMeansCi:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="level"):
            batch_means_ci([1.0, 2.0], level=1.0)
        with pytest.raises(ValueError, match="num_batches"):
            batch_means_ci([1.0, 2.0], num_batches=1)

    def test_known_iid_case(self):
        rng = np.random.default_rng(2011)
        xs = rng.normal(10.0, 2.0, size=400)
        mean, half, k, b = batch_means_ci(xs, num_batches=20, level=0.95)
        assert mean == pytest.approx(10.0, abs=0.3)
        assert k == 20 and b == 20
        # For iid data the batch-means half-width approximates the
        # classic t-interval: t_{.975,19} * (sigma/sqrt(n)).
        classic = 2.093 * 2.0 / math.sqrt(400)
        assert half == pytest.approx(classic, rel=0.5)
        assert abs(mean - 10.0) <= 3.0 * half

    def test_leftovers_dropped_from_the_front(self):
        # 11 samples into 5 batches of 2 drops exactly the first sample.
        xs = [1000.0] + [2.0] * 10
        mean, half, k, b = batch_means_ci(xs, num_batches=5)
        assert (k, b) == (5, 2)
        assert not math.isnan(half)
        # The spike sits in the dropped remainder: batch means are flat.
        assert half == 0.0


class TestAnalyzeSeries:
    def test_summary_fields_on_transient_series(self):
        s = analyze_series(transient_series(), metric="power")
        assert isinstance(s, SteadyStateSummary)
        assert s.metric == "power"
        assert s.num_windows == 150
        assert s.used_windows == 150
        assert 20 <= s.warmup_windows <= 70
        assert s.mean == pytest.approx(1.0, abs=0.1)
        assert s.converged

    def test_nan_windows_excluded_but_indexed(self):
        # nans (windows with no completions) pad the front: the raw
        # warm-up index must account for them via the kept-index map.
        series = [math.nan] * 4 + list(transient_series())
        s = analyze_series(series)
        assert s.num_windows == 154
        assert s.used_windows == 150
        assert s.warmup_windows >= 24  # raw index: 4 nans + >= 20 kept

    def test_all_nan_series_does_not_converge(self):
        s = analyze_series([math.nan] * 40)
        assert s.used_windows == 0
        assert math.isnan(s.mean)
        assert not s.converged

    def test_short_series_does_not_converge(self):
        s = analyze_series([1.0, 2.0, 1.5])
        assert not s.converged
        assert math.isnan(s.ci_half_width)

    def test_never_settling_series_flagged_unconverged(self):
        # A pure ramp drives MSER to its half-series bound.
        s = analyze_series(np.arange(200, dtype=float))
        assert not s.converged

    def test_to_dict_encodes_nan_as_none(self):
        doc = analyze_series([1.0, 2.0]).to_dict()
        assert doc["ci_half_width"] is None
        assert doc["converged"] is False


class TestAnalyzeWindows:
    @staticmethod
    def rows(n: int = 40):
        rng = np.random.default_rng(1)
        rows = []
        for i in range(n):
            on_time = int(rng.integers(7, 10))
            rows.append(
                {
                    "start": 10.0 * i,
                    "end": 10.0 * (i + 1),
                    "arrivals": 10,
                    "mapped": 10,
                    "discarded": 0,
                    "completed": 10,
                    "on_time": on_time,
                    "late": 10 - on_time,
                    "energy": 400.0 + float(rng.normal(0, 10)),
                    "budget_remaining": None,
                    "in_system_end": 2,
                }
            )
        return rows

    def test_default_metrics_covered(self):
        summaries = analyze_windows(self.rows())
        assert set(summaries) == set(DEFAULT_METRICS)
        assert summaries["throughput"].mean == pytest.approx(1.0)
        assert summaries["power"].mean == pytest.approx(40.0, rel=0.05)

    def test_budget_rate_enables_burn_rate_metric(self):
        summaries = analyze_windows(
            self.rows(), metrics=("burn_rate",), budget_rate=80.0
        )
        # 400 J per 10 s window over an 800 J allowance is 0.5.
        assert summaries["burn_rate"].mean == pytest.approx(0.5, rel=0.1)


class TestSteadyStateTable:
    def test_renders_every_metric_row(self):
        summaries = analyze_windows(TestAnalyzeWindows.rows())
        table = steady_state_table(summaries)
        lines = table.splitlines()
        assert "| metric" in lines[0]
        for metric in DEFAULT_METRICS:
            assert any(f"| {metric}" in line for line in lines)
        assert "yes" in table or "no" in table

    def test_unconverged_metric_shows_dashes(self):
        table = steady_state_table({"x": analyze_series([1.0, 2.0], metric="x")})
        assert "| -" in table
        assert "| no" in table
