"""Tests for trace summarization (repro.analysis.trace_summary)."""

from __future__ import annotations

import math

from repro.analysis.trace_summary import (
    TraceSummary,
    summarize_trace,
    trace_summary_table,
)
from repro.obs.events import (
    CAUSE_CANCELLED,
    CheckpointWritten,
    EnergyExhausted,
    TaskCompleted,
    TaskDiscarded,
    TaskMapped,
    TrialFinished,
    TrialQuarantined,
    TrialRetried,
    TrialStarted,
)

EVENTS = [
    TrialStarted(seed=1, num_tasks=3, heuristic="LL", variant="en", budget=100.0),
    TaskMapped(
        t=0.5, task_id=0, type_id=1, core_id=0, pstate=2,
        energy_estimate=90.0, queue_depth=1.0,
    ),
    TaskMapped(
        t=1.0, task_id=1, type_id=0, core_id=3, pstate=2,
        energy_estimate=80.0, queue_depth=3.0,
    ),
    TaskDiscarded(t=1.5, task_id=2, type_id=2),
    TaskDiscarded(t=1.6, task_id=3, type_id=2, cause=CAUSE_CANCELLED),
    TaskCompleted(t=2.0, task_id=0, type_id=1, core_id=0),
    EnergyExhausted(t=9.0, budget=100.0),
    TrialFinished(
        makespan=9.5, missed=2, completed_within=1, discarded=2, late=0,
        energy_cutoff=1, total_energy=101.0,
    ),
]


class TestSummarizeTrace:
    def test_counts(self):
        s = summarize_trace(EVENTS)
        assert (s.trials, s.mapped, s.discarded, s.completed) == (1, 2, 2, 1)
        assert (s.exhaustions, s.finished) == (1, 1)

    def test_aggregates(self):
        s = summarize_trace(EVENTS)
        assert s.mean_queue_depth == 2.0
        assert s.last_energy_estimate == 80.0
        assert s.pstate_counts == {2: 2}
        assert s.discard_causes == {"empty_feasible_set": 1, CAUSE_CANCELLED: 1}
        assert s.discard_fraction == 0.5

    def test_empty_trace(self):
        s = summarize_trace([])
        assert s == TraceSummary()
        assert math.isnan(s.mean_queue_depth)
        assert math.isnan(s.discard_fraction)

    def test_accepts_any_iterable(self):
        assert summarize_trace(iter(EVENTS)).mapped == 2


class TestTraceSummaryTable:
    def test_table_rows(self):
        table = trace_summary_table(EVENTS)
        assert "tasks mapped" in table
        assert "discards[empty_feasible_set]" in table
        assert "discards[cancelled]" in table
        assert "mappings[P2]" in table
        assert "mean queue depth at mapping" in table

    def test_empty_trace_table_omits_nan_rows(self):
        table = trace_summary_table([])
        assert "nan" not in table
        assert "tasks mapped" in table


RECOVERY_EVENTS = EVENTS + [
    TrialRetried(trial=0, attempt=1, fault="crash", delay=0.25),
    TrialRetried(trial=2, attempt=1, fault="corrupt", delay=0.5),
    TrialQuarantined(trial=2, attempts=3, fault="corrupt"),
    CheckpointWritten(trial=0, path="run.jsonl", records=1),
]


class TestRecoveryRows:
    def test_recovery_counts(self):
        s = summarize_trace(RECOVERY_EVENTS)
        assert s.retries == 2
        assert s.quarantines == 1
        assert s.checkpoints == 1
        assert s.fault_kinds == {"crash": 1, "corrupt": 2}

    def test_recovery_rows_render(self):
        table = trace_summary_table(RECOVERY_EVENTS)
        assert "trial retries" in table
        assert "trials quarantined" in table
        assert "checkpoint records" in table
        assert "faults[crash]" in table
        assert "faults[corrupt]" in table

    def test_clean_trace_omits_recovery_rows(self):
        table = trace_summary_table(EVENTS)
        assert "retries" not in table
        assert "quarantined" not in table
        assert "faults[" not in table
