"""Tests for markdown tables (repro.analysis.tables)."""

from __future__ import annotations

import pytest

from repro.analysis.tables import markdown_table


class TestMarkdownTable:
    def test_structure(self):
        out = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| a")
        assert set(lines[1].replace("|", "").strip()) <= {"-", " "}

    def test_column_alignment(self):
        out = markdown_table(["name", "v"], [["long-name-here", 1]])
        header, sep, row = out.splitlines()
        assert len(header) == len(sep) == len(row)

    def test_empty_rows_ok(self):
        out = markdown_table(["a"], [])
        assert out.splitlines()[0] == "| a |"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            markdown_table(["a", "b"], [[1]])

    def test_rejects_no_columns(self):
        with pytest.raises(ValueError):
            markdown_table([], [])

    def test_stringifies_cells(self):
        out = markdown_table(["x"], [[3.5], [None]])
        assert "3.5" in out and "None" in out
