"""Golden regression values.

These pin exact outputs for fixed seeds so *any* behavioral change to the
pipeline (cluster generation, CVB draw, pmf discretization, mapping
logic, energy accounting) is caught immediately.  If a change is
intentional, regenerate the constants with the printed actuals — every
assertion message carries them.

Scope is deliberately small (one tiny system, four policies) to stay
fast; shape-level correctness lives in test_end_to_end.py.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import TrialPlan, VariantSpec
from repro.validation import validate_trial
from tests.conftest import tiny_config
from repro import build_trial_system


@pytest.fixture(scope="module")
def system():
    return build_trial_system(tiny_config(seed=123))


class TestEnvironmentGolden:
    def test_cluster_draw(self, system):
        assert system.cluster.num_cores == 14
        assert system.cluster.num_nodes == 3

    def test_t_avg(self, system):
        assert system.t_avg == pytest.approx(1031.7930, rel=1e-4)

    def test_p_avg(self, system):
        assert system.p_avg == pytest.approx(76.2899, rel=1e-4)

    def test_budget(self, system):
        assert system.budget == pytest.approx(4722922.4, rel=1e-4)

    def test_first_arrivals(self, system):
        tasks = system.workload.tasks
        assert tasks[0].arrival == pytest.approx(11.3764, rel=1e-3)
        assert tasks[0].type_id == 4


def _run(system, heuristic: str, variant: str) -> int:
    result = TrialPlan(
        system=system, spec=VariantSpec(heuristic, variant), keep_outcomes=True
    ).run()
    validate_trial(system, result)
    return result.missed


class TestPolicyGolden:
    """Exact missed-deadline counts for seed 123 (60 tasks, 3 nodes)."""

    def test_mect_none(self, system):
        assert _run(system, "MECT", "none") == 20

    def test_mect_en_rob(self, system):
        assert _run(system, "MECT", "en+rob") == 8

    def test_sq_none(self, system):
        assert _run(system, "SQ", "none") == 20

    def test_ll_en_rob(self, system):
        assert _run(system, "LL", "en+rob") == 6

    def test_random_none(self, system):
        assert _run(system, "Random", "none") == 29
