"""Service-mode soak: a long generative run with bounded-state invariants.

Drives ~20k tasks through ``run_service`` (an order of magnitude beyond
any batch trial) and checks the properties that make the service loop
safe to run indefinitely: window accounting composes exactly (the
monoid), the rolling allowance never goes negative, ring-buffer
timelines never exceed their capacity, and no per-task state (outcome
tracking) accumulates.

The strict two-run window-composition check pins ``planning_tasks`` and
``budget_cap``: both default from the window length, so comparing a
windowed run against a one-big-window run of the *same* trajectory
requires holding those policy inputs fixed.
"""

from __future__ import annotations

import os

import pytest

from repro import api
from repro.sim.metrics import WindowStats
from tests.conftest import tiny_config

SOAK_TASKS = int(os.environ.get("REPRO_SOAK_TASKS", "20000"))


@pytest.fixture(scope="module")
def scenario() -> api.Scenario:
    return api.Scenario("LL", "en+rob", config=tiny_config(seed=2011))


@pytest.fixture(scope="module")
def system(scenario):
    return scenario.build_system()


@pytest.fixture(scope="module")
def soak(scenario, system):
    """One shared soak run (module-scoped: it is the expensive part)."""
    timeline = api.TimelineRecorder(120.0, stream=0, label="soak", capacity=256)
    service = api.ServiceConfig(traffic="diurnal", task_limit=SOAK_TASKS)
    result = api.run_service(scenario, service, system=system, timeline=timeline)
    return result, timeline


class TestSoak:
    def test_admits_the_full_task_budget(self, soak):
        result, _ = soak
        assert result.arrivals == SOAK_TASKS
        totals = result.totals
        assert totals.mapped + totals.discarded == SOAK_TASKS
        assert totals.completed == totals.mapped  # everything mapped drains

    def test_windows_are_contiguous_and_cover_the_run(self, soak):
        result, _ = soak
        assert result.windows[0].start == 0.0
        assert result.windows[-1].end >= result.makespan
        for left, right in zip(result.windows, result.windows[1:]):
            assert right.start == left.end

    def test_rolling_budget_never_negative(self, soak):
        result, _ = soak
        assert all(w.budget_remaining >= 0.0 for w in result.windows)
        assert result.budget_deficit >= 0.0
        assert result.budget_drawn >= 0.0

    def test_window_energy_telescopes_to_total(self, soak):
        result, _ = soak
        merged = WindowStats.merge_all(result.windows)
        assert merged.energy == pytest.approx(result.total_energy, rel=1e-9)

    def test_ring_timeline_never_exceeds_capacity(self, soak):
        result, timeline = soak
        assert len(timeline) == 256  # a soak-length run saturates the ring
        assert timeline.samples[-1].t <= result.makespan

    def test_no_per_task_state_accumulates(self, soak):
        # Generative mode must not score outcomes — that list would grow
        # without bound on a real service.
        result, _ = soak
        assert result.trial_result is None


class TestWindowComposition:
    """concat(windows) == one big window, on a smaller pinned sub-run."""

    @pytest.fixture(scope="class")
    def runs(self, scenario, system):
        # Pin the policy inputs that otherwise derive from the window
        # length, so both runs see the identical trajectory.
        common = dict(
            traffic="poisson", task_limit=3000, planning_tasks=50, budget_cap=5e7
        )
        windowed = api.run_service(
            scenario, api.ServiceConfig(window=500.0, **common), system=system
        )
        one_shot = api.run_service(
            scenario, api.ServiceConfig(window=1e12, **common), system=system
        )
        return windowed, one_shot

    def test_one_big_window(self, runs):
        _, one_shot = runs
        assert len(one_shot.windows) == 1

    def test_merged_counts_equal_single_window(self, runs):
        windowed, one_shot = runs
        merged = windowed.totals
        big = one_shot.windows[0]
        assert merged.mapped == big.mapped
        assert merged.discarded == big.discarded
        assert merged.completed == big.completed
        assert merged.on_time == big.on_time
        assert merged.late == big.late
        assert merged.in_system_end == big.in_system_end

    def test_merged_energy_and_budget_equal_single_window(self, runs):
        windowed, one_shot = runs
        merged = windowed.totals
        big = one_shot.windows[0]
        assert merged.energy == pytest.approx(big.energy, rel=1e-12)
        assert merged.budget_remaining == pytest.approx(
            big.budget_remaining, rel=1e-12
        )

    def test_both_runs_agree_on_totals(self, runs):
        windowed, one_shot = runs
        assert windowed.makespan == one_shot.makespan
        assert windowed.total_energy == one_shot.total_energy
        assert windowed.budget_drawn == one_shot.budget_drawn
        assert windowed.budget_deficit == one_shot.budget_deficit
