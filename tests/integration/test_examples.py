"""The example scripts must at least parse and expose a main()."""

from __future__ import annotations

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


class TestExamples:
    def test_at_least_three_examples(self):
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_parses(self, path):
        tree = ast.parse(path.read_text())
        names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree)

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_only_public_api_imports(self, path):
        # Examples must not reach into protected members.
        text = path.read_text()
        assert "._" not in text


class TestQuickstartObserved:
    """Run quickstart in observed mode and round-trip every artifact."""

    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        path = next(p for p in EXAMPLES if p.name == "quickstart.py")
        spec = importlib.util.spec_from_file_location("quickstart_example", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        outdir = tmp_path_factory.mktemp("quickstart")
        module.main(seed=11, outdir=str(outdir), num_tasks=80)
        return outdir

    def test_writes_all_artifacts(self, artifacts):
        for name in (
            "quickstart_trace.jsonl",
            "quickstart_metrics.json",
            "quickstart.manifest.json",
        ):
            assert (artifacts / name).exists()

    def test_trace_and_metrics_agree(self, artifacts):
        from repro.io.trace_io import load_trace
        from repro.obs.sinks import MetricsRegistry
        import json

        events = load_trace(artifacts / "quickstart_trace.jsonl")
        metrics = MetricsRegistry.from_dict(
            json.loads((artifacts / "quickstart_metrics.json").read_text())
        )
        mapped_events = sum(1 for e in events if e.kind == "task_mapped")
        assert metrics.counter("tasks_mapped") == mapped_events

    def test_manifest_inspectable_via_cli(self, artifacts, capsys):
        from repro.cli import main as cli_main

        code = cli_main(
            [
                "inspect-manifest",
                str(artifacts / "quickstart.manifest.json"),
                "--trace",
                str(artifacts / "quickstart_trace.jsonl"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "base seed" in out
        assert "tasks mapped" in out
