"""The example scripts must at least parse and expose a main()."""

from __future__ import annotations

import ast
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


class TestExamples:
    def test_at_least_three_examples(self):
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_parses(self, path):
        tree = ast.parse(path.read_text())
        names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree)

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_only_public_api_imports(self, path):
        # Examples must not reach into protected members.
        text = path.read_text()
        assert "._" not in text
