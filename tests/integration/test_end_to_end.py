"""End-to-end integration: the paper's qualitative claims at reduced scale.

These tests run the real engine over a paper-shaped (but smaller) trial
and assert the *shape* of Section VII's results — the statements that
must hold for the reproduction to be meaningful.  Reduced scale keeps
them to a few seconds; the benches replay them at figure scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import VariantSpec, run_ensemble
from tests.conftest import small_config

TRIALS = 3

GRID = tuple(
    VariantSpec(h, v)
    for h in ("SQ", "MECT", "LL", "Random")
    for v in ("none", "en", "rob", "en+rob")
)


@pytest.fixture(scope="module")
def grid():
    return run_ensemble(GRID, small_config(seed=2), num_trials=TRIALS, base_seed=20)


def med(grid, h, v):
    return grid.median_misses(VariantSpec(h, v))


class TestPaperShape:
    def test_nobody_misses_everything_or_nothing(self, grid):
        for spec in GRID:
            m = grid.median_misses(spec)
            assert 0 <= m < small_config().workload.num_tasks

    def test_unfiltered_random_is_worst(self, grid):
        worst = max(med(grid, h, "none") for h in ("SQ", "MECT", "LL"))
        assert med(grid, "Random", "none") > worst

    def test_energy_filter_helps_informed_heuristics(self, grid):
        # Figures 2-4: "en" markedly improves SQ, MECT and LL.
        for h in ("SQ", "MECT", "LL"):
            assert med(grid, h, "en") < med(grid, h, "none")

    def test_robustness_filter_alone_is_inert_for_informed(self, grid):
        # Figures 2-4: "rob" alone causes no significant change for
        # heuristics other than Random.
        for h in ("SQ", "MECT"):
            assert med(grid, h, "rob") == pytest.approx(
                med(grid, h, "none"), rel=0.12, abs=8
            )

    def test_robustness_filter_rescues_random(self, grid):
        # Figure 5: "rob" alone is a large benefit for Random.
        assert med(grid, "Random", "rob") < 0.75 * med(grid, "Random", "none")

    def test_en_rob_is_best_variant_for_informed(self, grid):
        for h in ("SQ", "MECT", "LL"):
            best = min(med(grid, h, v) for v in ("none", "en", "rob", "en+rob"))
            assert med(grid, h, "en+rob") <= best + 5

    def test_filtering_brings_random_near_informed(self, grid):
        # The paper's headline: filters, not heuristics, drive results.
        best_informed = min(med(grid, h, "en+rob") for h in ("SQ", "MECT", "LL"))
        gap_pp = (med(grid, "Random", "en+rob") - best_informed) / small_config().workload.num_tasks
        assert gap_pp < 0.15  # paper: 4pp at full scale

    def test_filtered_beats_unfiltered_for_every_heuristic(self, grid):
        for h in ("SQ", "MECT", "LL", "Random"):
            assert med(grid, h, "en+rob") < med(grid, h, "none")


class TestEnergyShape:
    def test_unfiltered_overruns_budget(self, grid):
        # MECT/none rides P0 and busts the constraint (energy cutoff
        # misses dominate), per the paper's Section VII explanation.
        results = grid.results[VariantSpec("MECT", "none")]
        overruns = [r.total_energy > r.budget for r in results]
        assert np.mean(overruns) >= 0.5

    def test_filtering_reduces_energy(self, grid):
        for h in ("SQ", "MECT", "LL"):
            e_none = np.median(
                [r.total_energy for r in grid.results[VariantSpec(h, "none")]]
            )
            e_filtered = np.median(
                [r.total_energy for r in grid.results[VariantSpec(h, "en+rob")]]
            )
            assert e_filtered < e_none
