"""Validating the robustness measure's predictions (paper contribution (a)).

The paper's first contribution is "a model of robustness for this
environment" whose use in allocation decisions it validates.  The
scheduler-side aggregate — the sum over mapped tasks of the chosen
assignment's on-time probability rho — *predicts* the number of on-time
completions; here we check that prediction against the realized count on
real trials.

The prediction is made at mapping time with full knowledge of the queue
ahead of the task (nothing mapped later can delay it, FIFO cores), so it
should be unbiased up to pmf discretization.  It deliberately knows
nothing about the energy budget, so the comparison target is the raw
on-time count (before the energy cutoff).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import VariantSpec
from repro.filters.chain import build_filter_chain
from repro.heuristics.registry import build_heuristic
from repro import build_trial_system, rng as rng_mod
from repro.sim.engine import run_trial
from repro.sim.metrics import TraceCollector
from tests.conftest import small_config

CASES = [
    VariantSpec("MECT", "none"),
    VariantSpec("LL", "en+rob"),
    VariantSpec("Random", "rob"),
]


def run_with_collector(seed: int, spec: VariantSpec):
    system = build_trial_system(small_config(seed=seed))
    collector = TraceCollector()
    heuristic = build_heuristic(
        spec.heuristic, rng_mod.stream(seed, "rho-val", spec.label)
    )
    result = run_trial(
        system, heuristic, build_filter_chain(spec.variant), collector=collector
    )
    on_time_actual = sum(1 for o in result.outcomes if o.on_time())
    return collector.predicted_on_time(), on_time_actual, result


class TestRhoPredictsOnTimeCompletions:
    @pytest.mark.parametrize("spec", CASES, ids=lambda s: s.label)
    def test_prediction_matches_realization(self, spec):
        predictions = []
        actuals = []
        for seed in (41, 42, 43):
            predicted, actual, result = run_with_collector(seed, spec)
            assert 0.0 <= predicted <= result.num_tasks + 1e-6
            predictions.append(predicted)
            actuals.append(actual)
        predicted_total = float(np.sum(predictions))
        actual_total = float(np.sum(actuals))
        # Within 5% of the workload across three pooled trials: the
        # robustness measure is a usable predictor, the paper's premise.
        tolerance = 0.05 * 3 * small_config().workload.num_tasks
        assert abs(predicted_total - actual_total) <= tolerance

    def test_prediction_tracks_policy_quality(self):
        # A policy with lower predicted robustness should realize fewer
        # on-time completions — predictions are comparable across
        # policies, which is what makes rho usable inside decisions.
        pred_good, actual_good, _ = run_with_collector(44, VariantSpec("MECT", "none"))
        pred_bad, actual_bad, _ = run_with_collector(44, VariantSpec("Random", "none"))
        assert pred_bad < pred_good
        assert actual_bad < actual_good
