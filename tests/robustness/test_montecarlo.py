"""Monte-Carlo validation of the Section IV-B prediction machinery.

The analytic on-time probabilities and completion distributions must
agree with brute-force simulation of the same queue: sample execution
times, replay the FIFO core, and compare frequencies.  This is the
strongest correctness evidence for the scheduler's decision inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.robustness.completion import prob_on_time, ready_pmf, running_completion_pmf
from repro.robustness.robustness import QueueEntry, core_robustness
from repro.stoch.distributions import discretized_gamma
from repro.stoch.pmf import PMF
from repro.stoch.samplers import sample_pmf_many

N = 40_000


def simulate_queue_completions(
    exec_pmfs: list[PMF],
    start_time: float,
    t_now: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sampled completion times of the *last* task in a FIFO queue.

    The first pmf belongs to the running task (started at ``start_time``);
    its samples are rejected (resampled) unless completion >= t_now —
    conditioning identical to the paper's truncate-and-renormalize.
    """
    first = sample_pmf_many(exec_pmfs[0], rng, N) + start_time
    # Conditioning via rejection: resample past completions.
    for _ in range(100):
        past = first < t_now - 1e-9
        if not past.any():
            break
        first[past] = sample_pmf_many(exec_pmfs[0], rng, int(past.sum())) + start_time
    else:
        first = np.maximum(first, t_now)
    total = first
    for pmf in exec_pmfs[1:]:
        total = total + sample_pmf_many(pmf, rng, N)
    return total


class TestAgainstMonteCarlo:
    def test_prob_on_time_fresh_task_idle_core(self, rng):
        ex = discretized_gamma(100.0, 0.3, dt=2.0)
        ready = PMF.delta(50.0, 2.0)
        deadline = 160.0
        analytic = prob_on_time(ready, ex, deadline)
        samples = sample_pmf_many(ex, rng, N) + 50.0
        empirical = float(np.mean(samples <= deadline + 1e-9))
        assert analytic == pytest.approx(empirical, abs=0.01)

    def test_prob_on_time_behind_running_task(self, rng):
        running_exec = discretized_gamma(80.0, 0.25, dt=2.0)
        new_exec = discretized_gamma(60.0, 0.25, dt=2.0)
        start, t_now = 0.0, 40.0
        running = running_completion_pmf(running_exec, start, t_now)
        ready = ready_pmf(running, [], t_now, dt=2.0)
        deadline = 150.0
        analytic = prob_on_time(ready, new_exec, deadline)
        completions = simulate_queue_completions(
            [running_exec, new_exec], start, t_now, rng
        )
        empirical = float(np.mean(completions <= deadline + 1e-9))
        assert analytic == pytest.approx(empirical, abs=0.015)

    def test_prob_on_time_deep_queue(self, rng):
        running_exec = discretized_gamma(70.0, 0.2, dt=2.0)
        q1 = discretized_gamma(50.0, 0.3, dt=2.0)
        q2 = discretized_gamma(90.0, 0.15, dt=2.0)
        new_exec = discretized_gamma(40.0, 0.25, dt=2.0)
        start, t_now = 10.0, 30.0
        running = running_completion_pmf(running_exec, start, t_now)
        ready = ready_pmf(running, [q1, q2], t_now, dt=2.0)
        deadline = 280.0
        analytic = prob_on_time(ready, new_exec, deadline)
        completions = simulate_queue_completions(
            [running_exec, q1, q2, new_exec], start, t_now, rng
        )
        empirical = float(np.mean(completions <= deadline + 1e-9))
        assert analytic == pytest.approx(empirical, abs=0.015)

    def test_ready_mean_against_montecarlo(self, rng):
        running_exec = discretized_gamma(100.0, 0.3, dt=2.0)
        q1 = discretized_gamma(80.0, 0.2, dt=2.0)
        start, t_now = 0.0, 60.0
        running = running_completion_pmf(running_exec, start, t_now)
        ready = ready_pmf(running, [q1], t_now, dt=2.0)
        completions = simulate_queue_completions([running_exec, q1], start, t_now, rng)
        assert ready.mean() == pytest.approx(float(completions.mean()), rel=0.01)

    def test_core_robustness_against_montecarlo(self, rng):
        running_exec = discretized_gamma(60.0, 0.25, dt=2.0)
        q_exec = discretized_gamma(50.0, 0.25, dt=2.0)
        start, t_now = 0.0, 20.0
        d1, d2 = 75.0, 130.0
        entries = [
            QueueEntry(running_exec, d1, start_time=start),
            QueueEntry(q_exec, d2),
        ]
        analytic = core_robustness(entries, t_now)
        c1 = simulate_queue_completions([running_exec], start, t_now, rng)
        rng2 = np.random.default_rng(rng.integers(2**31))
        c2 = simulate_queue_completions([running_exec, q_exec], start, t_now, rng2)
        empirical = float(np.mean(c1 <= d1 + 1e-9)) + float(np.mean(c2 <= d2 + 1e-9))
        assert analytic == pytest.approx(empirical, abs=0.02)
