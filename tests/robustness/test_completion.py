"""Tests for stochastic completion times (repro.robustness.completion)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.robustness.completion import (
    completion_pmf,
    prob_on_time,
    prob_on_time_all_pstates,
    ready_pmf,
    running_completion_pmf,
)
from repro.stoch.ops import convolve
from repro.stoch.pmf import PMF


def exec_pmf() -> PMF:
    return PMF(10.0, 1.0, [0.25, 0.5, 0.25])  # mass at 10, 11, 12


class TestRunningCompletion:
    def test_shifted_by_start(self):
        out = running_completion_pmf(exec_pmf(), start_time=100.0, t_now=100.0)
        assert out.start == pytest.approx(110.0)

    def test_truncates_past(self):
        # Started at 0, observed at 11.5: impulses at 10 and 11 are past.
        out = running_completion_pmf(exec_pmf(), start_time=0.0, t_now=11.5)
        assert out.start == pytest.approx(12.0)
        assert out.total_mass() == pytest.approx(1.0)

    def test_overdue_degenerates_to_now(self):
        out = running_completion_pmf(exec_pmf(), start_time=0.0, t_now=50.0)
        assert len(out) == 1
        assert out.mean() == pytest.approx(50.0)

    def test_rejects_time_travel(self):
        with pytest.raises(ValueError):
            running_completion_pmf(exec_pmf(), start_time=10.0, t_now=5.0)


class TestReadyPMF:
    def test_idle_core_is_ready_now(self):
        out = ready_pmf(None, [], t_now=42.0, dt=1.0)
        assert len(out) == 1
        assert out.mean() == pytest.approx(42.0)

    def test_idle_with_queue_is_invalid(self):
        with pytest.raises(ValueError):
            ready_pmf(None, [exec_pmf()], t_now=0.0, dt=1.0)

    def test_running_only(self):
        running = running_completion_pmf(exec_pmf(), 0.0, 0.0)
        out = ready_pmf(running, [], t_now=0.0, dt=1.0)
        assert out == running

    def test_running_plus_queue_convolves(self):
        running = running_completion_pmf(exec_pmf(), 0.0, 0.0)
        queued = [exec_pmf(), exec_pmf()]
        out = ready_pmf(running, queued, t_now=0.0, dt=1.0)
        expected = convolve(convolve(running, queued[0]), queued[1])
        assert out == expected

    def test_mean_adds_up(self):
        running = running_completion_pmf(exec_pmf(), 0.0, 0.0)
        out = ready_pmf(running, [exec_pmf()], t_now=0.0, dt=1.0)
        assert out.mean() == pytest.approx(2 * exec_pmf().mean())


class TestCompletionAndProb:
    def test_completion_is_convolution(self):
        ready = PMF.delta(5.0, 1.0)
        out = completion_pmf(ready, exec_pmf())
        assert out.start == pytest.approx(15.0)
        assert out.mean() == pytest.approx(5.0 + exec_pmf().mean())

    def test_prob_on_time_matches_completion_cdf(self):
        ready = PMF(0.0, 1.0, [0.5, 0.5])
        ex = exec_pmf()
        comp = completion_pmf(ready, ex)
        for d in (9.0, 10.0, 11.5, 13.0, 20.0):
            assert prob_on_time(ready, ex, d) == pytest.approx(comp.prob_at_most(d))

    def test_prob_on_time_extremes(self):
        ready = PMF.delta(0.0, 1.0)
        assert prob_on_time(ready, exec_pmf(), 5.0) == 0.0
        assert prob_on_time(ready, exec_pmf(), 100.0) == pytest.approx(1.0)


class TestAllPStatesMatrix:
    def test_matches_per_pstate_calls(self):
        rng = np.random.default_rng(0)
        ready = PMF(3.0, 1.0, rng.random(12))
        pmfs = [
            PMF(5.0 + pi, 1.0, rng.random(4 + pi))
            for pi in range(4)
        ]
        L = max(len(p) for p in pmfs)
        times = np.zeros((4, L))
        probs = np.zeros((4, L))
        for pi, p in enumerate(pmfs):
            times[pi, : len(p)] = p.times
            times[pi, len(p) :] = p.stop
            probs[pi, : len(p)] = p.probs
        deadline = 14.0
        out = prob_on_time_all_pstates(ready, times, probs, deadline)
        expected = np.array([prob_on_time(ready, p, deadline) for p in pmfs])
        assert np.allclose(out, expected, atol=1e-12)

    def test_monotone_in_deadline(self):
        rng = np.random.default_rng(1)
        ready = PMF(0.0, 1.0, rng.random(10))
        times = np.tile(np.arange(5.0, 11.0), (2, 1))
        probs = np.tile(np.full(6, 1 / 6), (2, 1))
        vals = [
            prob_on_time_all_pstates(ready, times, probs, d)[0] for d in np.linspace(0, 30, 15)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(vals, vals[1:]))
