"""Tests for robustness aggregation (repro.robustness.robustness, Eqs. 3/4)."""

from __future__ import annotations

import pytest

from repro.robustness.robustness import (
    QueueEntry,
    core_completion_pmfs,
    core_robustness,
    system_robustness,
)
from repro.stoch.ops import convolve
from repro.stoch.pmf import PMF


def ex() -> PMF:
    return PMF(10.0, 1.0, [0.5, 0.5])  # mass at 10 and 11


class TestCoreCompletionPMFs:
    def test_empty_queue(self):
        assert core_completion_pmfs([], t_now=0.0) == []

    def test_chained_construction(self):
        entries = [
            QueueEntry(ex(), deadline=100.0, start_time=0.0),
            QueueEntry(ex(), deadline=100.0),
            QueueEntry(ex(), deadline=100.0),
        ]
        out = core_completion_pmfs(entries, t_now=0.0)
        assert len(out) == 3
        assert out[1] == convolve(out[0], ex())
        assert out[2] == convolve(out[1], ex())

    def test_requires_running_first(self):
        with pytest.raises(ValueError):
            core_completion_pmfs([QueueEntry(ex(), 10.0)], t_now=0.0)

    def test_rejects_second_running(self):
        entries = [
            QueueEntry(ex(), 10.0, start_time=0.0),
            QueueEntry(ex(), 10.0, start_time=1.0),
        ]
        with pytest.raises(ValueError):
            core_completion_pmfs(entries, t_now=2.0)

    def test_truncation_applies_to_running(self):
        entries = [QueueEntry(ex(), 100.0, start_time=0.0)]
        out = core_completion_pmfs(entries, t_now=10.5)
        assert out[0].start == pytest.approx(11.0)


class TestCoreRobustness:
    def test_sums_on_time_probabilities(self):
        # Running task surely on time; queued task surely late.
        entries = [
            QueueEntry(ex(), deadline=50.0, start_time=0.0),
            QueueEntry(ex(), deadline=5.0),
        ]
        rho = core_robustness(entries, t_now=0.0)
        assert rho == pytest.approx(1.0)

    def test_partial_probabilities(self):
        # Completion at {10, 11} each 0.5; deadline 10 -> P = 0.5.
        entries = [QueueEntry(ex(), deadline=10.0, start_time=0.0)]
        assert core_robustness(entries, t_now=0.0) == pytest.approx(0.5)

    def test_bounded_by_queue_length(self):
        entries = [
            QueueEntry(ex(), deadline=1000.0, start_time=0.0),
            QueueEntry(ex(), deadline=1000.0),
            QueueEntry(ex(), deadline=1000.0),
        ]
        rho = core_robustness(entries, t_now=0.0)
        assert 0.0 <= rho <= 3.0
        assert rho == pytest.approx(3.0)


class TestSystemRobustness:
    def test_sums_over_cores(self):
        core_a = [QueueEntry(ex(), deadline=50.0, start_time=0.0)]
        core_b = [QueueEntry(ex(), deadline=10.0, start_time=0.0)]
        rho = system_robustness([core_a, core_b, []], t_now=0.0)
        assert rho == pytest.approx(1.0 + 0.5)

    def test_empty_system(self):
        assert system_robustness([[], []], t_now=0.0) == 0.0
