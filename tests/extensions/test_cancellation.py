"""Tests for the cancellation extension (repro.extensions.cancellation)."""

from __future__ import annotations

import pytest

from repro.extensions.cancellation import AbandonHopelessPolicy
from repro.filters.chain import build_filter_chain
from repro.heuristics.mect import MinimumExpectedCompletionTime
from repro.sim.engine import run_trial
from repro import build_trial_system
from tests.conftest import small_config


class TestPolicyValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            AbandonHopelessPolicy(min_prob=1.5)

    def test_zero_threshold_allowed(self):
        assert AbandonHopelessPolicy(0.0).min_prob == 0.0


class TestCancellationBehavior:
    @pytest.fixture(scope="class")
    def runs(self):
        # A congested system (tight budget creates filtering pressure and
        # bursts create queues) where cancellation has something to do.
        system = build_trial_system(small_config(seed=17))
        baseline = run_trial(
            system, MinimumExpectedCompletionTime(), build_filter_chain("none")
        )
        policy = AbandonHopelessPolicy(min_prob=0.25)
        cancelled = run_trial(
            system,
            MinimumExpectedCompletionTime(),
            build_filter_chain("none"),
            hooks=policy,
        )
        return baseline, cancelled, policy

    def test_cancelled_tasks_become_discards(self, runs):
        baseline, cancelled, policy = runs
        assert cancelled.discarded == len(policy.cancelled)

    def test_accounting_still_consistent(self, runs):
        _, cancelled, _ = runs
        assert (
            cancelled.missed
            == cancelled.discarded + cancelled.late + cancelled.energy_cutoff
        )

    def test_cancellation_never_helps_hopeless_tasks(self, runs):
        baseline, cancelled, policy = runs
        if not policy.cancelled:
            pytest.skip("no congestion in this draw; nothing cancelled")
        # Cancelled ids must be absent from the completions.
        completed_ids = {
            o.task_id for o in cancelled.outcomes if not o.discarded
        }
        assert not (set(policy.cancelled) & completed_ids)

    def test_cancellation_does_not_explode_misses(self, runs):
        baseline, cancelled, policy = runs
        # Abandoning only sub-25%-probability tasks should not increase
        # total misses by more than the misclassified fraction.
        assert cancelled.missed <= baseline.missed + max(
            3, int(0.25 * len(policy.cancelled)) + 3
        )
