"""Tests for stochastic power (repro.extensions.power_distributions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions.power_distributions import (
    StochasticPowerModel,
    resample_trial_energy,
)
from repro.filters.chain import build_filter_chain
from repro.heuristics.mect import MinimumExpectedCompletionTime
from repro.sim.engine import run_trial


class TestStochasticPowerModel:
    def test_pmf_means_match_scalar_model(self, tiny_system):
        model = StochasticPowerModel(tiny_system.cluster, power_cv=0.05)
        means = tiny_system.cluster.power_table()
        for n in range(tiny_system.cluster.num_nodes):
            for pi in range(tiny_system.cluster.num_pstates):
                assert model.pmf(n, pi).mean() == pytest.approx(
                    float(means[n, pi]), rel=1e-3
                )

    def test_samples_spread_with_cv(self, tiny_system, rng):
        model = StochasticPowerModel(tiny_system.cluster, power_cv=0.1)
        draws = np.array([model.sample(0, 0, rng) for _ in range(2000)])
        mu = tiny_system.cluster.power_table()[0, 0]
        assert draws.std() == pytest.approx(0.1 * mu, rel=0.15)

    def test_rejects_bad_cv(self, tiny_system):
        with pytest.raises(ValueError):
            StochasticPowerModel(tiny_system.cluster, power_cv=0.0)


class TestResampleTrialEnergy:
    @pytest.fixture(scope="class")
    def trial(self, tiny_system):
        result = run_trial(
            tiny_system, MinimumExpectedCompletionTime(), build_filter_chain("none")
        )
        return tiny_system, result

    def test_requires_outcomes(self, trial):
        from dataclasses import replace

        system, result = trial
        model = StochasticPowerModel(system.cluster)
        with pytest.raises(ValueError):
            resample_trial_energy(
                replace(result, outcomes=()), system.cluster, model, np.random.default_rng(0)
            )

    def test_small_cv_reproduces_baseline(self, trial):
        system, result = trial
        model = StochasticPowerModel(system.cluster, power_cv=0.001)
        out = resample_trial_energy(
            result, system.cluster, model, np.random.default_rng(0)
        )
        assert out.total_energy == pytest.approx(result.total_energy, rel=0.01)
        assert abs(out.miss_shift) <= max(2, int(0.02 * result.num_tasks))

    def test_energy_varies_with_cv(self, trial):
        system, result = trial
        model = StochasticPowerModel(system.cluster, power_cv=0.1)
        outs = [
            resample_trial_energy(
                result, system.cluster, model, np.random.default_rng(s)
            ).total_energy
            for s in range(5)
        ]
        assert len(set(np.round(outs, 3))) > 1

    def test_baseline_missed_recorded(self, trial):
        system, result = trial
        model = StochasticPowerModel(system.cluster, power_cv=0.05)
        out = resample_trial_energy(
            result, system.cluster, model, np.random.default_rng(1)
        )
        assert out.baseline_missed == result.missed
