"""Tests for arrival-pattern generators (repro.extensions.arrival_patterns)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions.arrival_patterns import (
    constant_arrivals,
    multi_burst_arrivals,
    sinusoidal_arrivals,
    workload_with_arrivals,
)


class TestConstantArrivals:
    def test_count_and_monotone(self, rng):
        times = constant_arrivals(200, 0.1, rng)
        assert times.shape == (200,)
        assert np.all(np.diff(times) >= 0)

    def test_rate_matches(self):
        rng = np.random.default_rng(0)
        times = constant_arrivals(20_000, 0.05, rng)
        mean_gap = float(np.diff(np.concatenate([[0.0], times])).mean())
        assert mean_gap == pytest.approx(20.0, rel=0.03)

    def test_rejects_bad_rate(self, rng):
        with pytest.raises(ValueError):
            constant_arrivals(10, 0.0, rng)


class TestSinusoidalArrivals:
    def test_count_and_monotone(self, rng):
        times = sinusoidal_arrivals(300, 0.1, 0.5, 500.0, rng)
        assert times.shape == (300,)
        assert np.all(np.diff(times) >= 0)

    def test_zero_amplitude_is_homogeneous(self):
        rng = np.random.default_rng(1)
        times = sinusoidal_arrivals(10_000, 0.1, 0.0, 100.0, rng)
        mean_gap = float(np.diff(np.concatenate([[0.0], times])).mean())
        assert mean_gap == pytest.approx(10.0, rel=0.05)

    def test_rate_oscillates(self):
        rng = np.random.default_rng(2)
        period = 1000.0
        times = sinusoidal_arrivals(30_000, 0.2, 0.9, period, rng)
        phase = (times % period) / period
        # More arrivals in the rate peak (first half) than the trough.
        first_half = float(np.mean(phase < 0.5))
        assert first_half > 0.6

    def test_rejects_bad_amplitude(self, rng):
        with pytest.raises(ValueError):
            sinusoidal_arrivals(10, 0.1, 1.0, 100.0, rng)


class TestMultiBurstArrivals:
    def test_count_and_monotone(self, rng):
        times = multi_burst_arrivals(500, 4, 0.4, 0.2, 0.02, rng)
        assert times.shape == (500,)
        assert np.all(np.diff(times) >= 0)

    def test_two_bursts_reduces_to_paper_shape(self, rng):
        times = multi_burst_arrivals(1000, 2, 0.4, 1 / 8, 1 / 48, rng)
        gaps = np.diff(np.concatenate([[0.0], times]))
        assert gaps[:200].mean() < gaps[250:550].mean()

    def test_rejects_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            multi_burst_arrivals(100, 2, 1.5, 0.2, 0.02, rng)

    def test_rejects_misordered_rates(self, rng):
        with pytest.raises(ValueError):
            multi_burst_arrivals(100, 2, 0.4, 0.02, 0.2, rng)


class TestWorkloadWithArrivals:
    def test_builds_valid_workload(self, tiny_system, rng):
        cfg = tiny_system.config.workload
        arrivals = constant_arrivals(cfg.num_tasks, 0.05, rng)
        wl = workload_with_arrivals(cfg, tiny_system.table, seed=4, arrivals=arrivals)
        assert wl.num_tasks == cfg.num_tasks
        assert np.allclose([t.arrival for t in wl.tasks], arrivals)

    def test_deadlines_follow_baseline_model(self, tiny_system, rng):
        cfg = tiny_system.config.workload
        arrivals = constant_arrivals(cfg.num_tasks, 0.05, rng)
        wl = workload_with_arrivals(cfg, tiny_system.table, seed=4, arrivals=arrivals)
        t_avg = tiny_system.table.t_avg()
        for task in wl.tasks[:5]:
            expected = (
                task.arrival + tiny_system.table.mean_exec_of_type(task.type_id) + t_avg
            )
            assert task.deadline == pytest.approx(expected)

    def test_same_seed_same_types(self, tiny_system, rng):
        # Task types derive from the seed, not the arrival vector, so a
        # custom pattern is comparable against the baseline workload.
        cfg = tiny_system.config.workload
        arrivals = constant_arrivals(cfg.num_tasks, 0.05, rng)
        wl = workload_with_arrivals(
            cfg, tiny_system.table, seed=tiny_system.config.seed, arrivals=arrivals
        )
        assert [t.type_id for t in wl.tasks] == [
            t.type_id for t in tiny_system.workload.tasks
        ]

    def test_rejects_wrong_length(self, tiny_system, rng):
        cfg = tiny_system.config.workload
        with pytest.raises(ValueError):
            workload_with_arrivals(
                cfg, tiny_system.table, seed=4, arrivals=np.array([1.0, 2.0])
            )

    def test_rejects_unsorted(self, tiny_system):
        cfg = tiny_system.config.workload
        arrivals = np.linspace(100, 0, cfg.num_tasks)
        with pytest.raises(ValueError):
            workload_with_arrivals(cfg, tiny_system.table, seed=4, arrivals=arrivals)

    def test_runs_through_engine(self, tiny_system, rng):
        from dataclasses import replace

        from repro.filters.chain import build_filter_chain
        from repro.heuristics.shortest_queue import ShortestQueue
        from repro.sim.engine import run_trial

        cfg = tiny_system.config.workload
        arrivals = constant_arrivals(cfg.num_tasks, 0.05, rng)
        wl = workload_with_arrivals(cfg, tiny_system.table, seed=4, arrivals=arrivals)
        system = replace(tiny_system, workload=wl)
        result = run_trial(system, ShortestQueue(), build_filter_chain("en"))
        assert result.num_tasks == cfg.num_tasks
