"""Tests for work-stealing rescheduling (repro.extensions.rescheduling)."""

from __future__ import annotations

import pytest

from repro.extensions.rescheduling import WorkStealingPolicy
from repro.filters.chain import build_filter_chain
from repro.heuristics.mect import MinimumExpectedCompletionTime
from repro.heuristics.random_heuristic import RandomAssignment
from repro.sim.engine import run_trial
from repro import build_trial_system, rng as rng_mod
from tests.conftest import small_config


class TestPolicyValidation:
    def test_rejects_bad_gain(self):
        with pytest.raises(ValueError):
            WorkStealingPolicy(min_gain=-0.1)


class TestWorkStealing:
    @pytest.fixture(scope="class")
    def runs(self):
        # Random mapping creates imbalance, giving the thief targets.
        system = build_trial_system(small_config(seed=23))

        def random_h():
            return RandomAssignment(rng_mod.stream(23, "ws-random"))

        baseline = run_trial(system, random_h(), build_filter_chain("rob"))
        policy = WorkStealingPolicy(min_gain=0.02)
        stealing = run_trial(system, random_h(), build_filter_chain("rob"), hooks=policy)
        return baseline, stealing, system, policy

    def test_steals_happen_under_imbalance(self, runs):
        _, _, _, policy = runs
        assert len(policy.steals) > 0

    def test_accounting_consistent(self, runs):
        _, stealing, _, _ = runs
        assert (
            stealing.missed
            == stealing.discarded + stealing.late + stealing.energy_cutoff
        )
        assert len(stealing.outcomes) == stealing.num_tasks

    def test_stolen_tasks_completed_on_thief(self, runs):
        _, stealing, _, policy = runs
        outcome_by_id = {o.task_id: o for o in stealing.outcomes}
        for task_id, _from_core, to_core in policy.steals:
            final = outcome_by_id[task_id]
            # A task may be stolen more than once; its final record must
            # match the last move's destination.
            last_move = [s for s in policy.steals if s[0] == task_id][-1]
            assert final.core_id == last_move[2]

    def test_no_double_execution(self, runs):
        _, stealing, _, _ = runs
        # Each non-discarded task has exactly one start/completion pair
        # and no overlap on its core.
        by_core: dict[int, list] = {}
        for o in stealing.outcomes:
            if not o.discarded:
                by_core.setdefault(o.core_id, []).append(o)
        for outcomes in by_core.values():
            ordered = sorted(outcomes, key=lambda o: o.start)
            for a, b in zip(ordered, ordered[1:]):
                assert b.start >= a.completion - 1e-9

    def test_stealing_reduces_late_misses(self, runs):
        baseline, stealing, _, policy = runs
        # Work stealing fixes load imbalance, so late misses should not
        # get worse (and usually improve) for a load-blind mapper.
        assert stealing.late <= baseline.late + 3

    def test_engine_move_rejects_unknown_task(self, runs):
        # Covered indirectly: policy only records successful moves.
        _, _, _, policy = runs
        assert all(isinstance(s, tuple) and len(s) == 3 for s in policy.steals)


class TestEngineMoveQueued:
    def test_move_to_same_core_is_noop(self, tiny_system):
        from repro.sim.engine import Engine

        engine = Engine(
            tiny_system, MinimumExpectedCompletionTime(), build_filter_chain("none")
        )
        assert engine.move_queued(0, 0, 0, 0) is False

    def test_move_unknown_task_is_noop(self, tiny_system):
        from repro.sim.engine import Engine

        engine = Engine(
            tiny_system, MinimumExpectedCompletionTime(), build_filter_chain("none")
        )
        assert engine.move_queued(0, 999, 1, 0) is False
