"""Tests for batch-mode mapping (repro.extensions.batch_mode)."""

from __future__ import annotations

import pytest

from repro.extensions.batch_mode import BatchEngine, run_batch_trial
from repro.filters.chain import build_filter_chain
from repro.heuristics.mect import MinimumExpectedCompletionTime
from repro.sim.engine import run_trial
from repro import build_trial_system
from tests.conftest import small_config


class TestConstruction:
    def test_rejects_unknown_policy(self, tiny_system):
        with pytest.raises(ValueError):
            BatchEngine(tiny_system, policy="olb")  # type: ignore[arg-type]

    def test_runs_once(self, tiny_system):
        engine = BatchEngine(tiny_system)
        engine.run()
        with pytest.raises(RuntimeError):
            engine.run()


class TestAccounting:
    @pytest.fixture(scope="class")
    def result(self, tiny_system):
        return run_batch_trial(tiny_system, "min-min", build_filter_chain("none"))

    def test_all_tasks_scored(self, tiny_system, result):
        assert len(result.outcomes) == tiny_system.num_tasks
        assert result.missed + result.completed_within == tiny_system.num_tasks
        assert result.missed == result.discarded + result.late + result.energy_cutoff

    def test_label(self, result):
        assert result.heuristic == "Batch-min-min"
        assert result.variant == "none"

    def test_no_core_queues(self, result):
        # In batch mode every task starts the moment it is committed, so
        # per-core executions never overlap and there is no queueing
        # *within* a core.
        by_core: dict[int, list] = {}
        for o in result.outcomes:
            if not o.discarded:
                by_core.setdefault(o.core_id, []).append(o)
        for outcomes in by_core.values():
            ordered = sorted(outcomes, key=lambda o: o.start)
            for a, b in zip(ordered, ordered[1:]):
                assert b.start >= a.completion - 1e-9

    def test_starts_after_arrival(self, result):
        for o in result.outcomes:
            if not o.discarded:
                assert o.start >= o.arrival - 1e-9

    def test_unfiltered_discards_nothing(self, result):
        assert result.discarded == 0


class TestPolicies:
    def test_min_min_vs_max_min_differ(self):
        system = build_trial_system(small_config(seed=29))
        a = run_batch_trial(system, "min-min", build_filter_chain("none"))
        b = run_batch_trial(system, "max-min", build_filter_chain("none"))
        # Same environment, different commitment order.
        starts_a = [o.start for o in a.outcomes if not o.discarded]
        starts_b = [o.start for o in b.outcomes if not o.discarded]
        assert starts_a != starts_b

    def test_deterministic(self, tiny_system):
        a = run_batch_trial(tiny_system, "min-min", build_filter_chain("en+rob"))
        b = run_batch_trial(tiny_system, "min-min", build_filter_chain("en+rob"))
        assert a == b


class TestFilters:
    def test_energy_filter_reduces_energy(self, tiny_system):
        plain = run_batch_trial(tiny_system, "min-min", build_filter_chain("none"))
        filtered = run_batch_trial(tiny_system, "min-min", build_filter_chain("en"))
        assert filtered.total_energy <= plain.total_energy + 1e-6

    def test_impossible_filters_discard_everything(self, tiny_system):
        from repro.config import FilterConfig
        from repro.filters.chain import build_filter_chain as mk

        chain = mk("rob", FilterConfig(rho_thresh=1.0))
        # Requiring certainty (rho >= 1.0) is unmeetable for stochastic
        # tasks at admission time only when even the best assignment has
        # rho < 1; with tight grids some pmfs may reach exactly 1.0, so
        # just assert the run completes consistently.
        result = run_batch_trial(tiny_system, "min-min", chain)
        assert result.missed + result.completed_within == tiny_system.num_tasks


class TestVersusImmediate:
    def test_batch_no_worse_under_congestion(self):
        # Deferred commitment should not lose to immediate-mode MECT by
        # much on the same trial (it usually wins during bursts).
        system = build_trial_system(small_config(seed=31))
        immediate = run_trial(
            system, MinimumExpectedCompletionTime(), build_filter_chain("none")
        )
        batch = run_batch_trial(system, "min-min", build_filter_chain("none"))
        assert batch.late <= immediate.late + 0.1 * system.num_tasks
