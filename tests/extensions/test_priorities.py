"""Tests for the priorities extension (repro.extensions.priorities)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions.priorities import (
    PriorityLightestLoad,
    weighted_missed,
    with_priorities,
)
from repro.filters.chain import build_filter_chain
from repro.heuristics.base import CandidateSet, MappingContext
from repro.heuristics.lightest_load import LightestLoad
from repro.sim.engine import run_trial
from repro.workload.task import Task


class TestWithPriorities:
    def test_levels_assigned(self, tiny_system, rng):
        wl = with_priorities(tiny_system.workload, rng, levels=(1.0, 2.0))
        assert {t.priority for t in wl.tasks} <= {1.0, 2.0}
        assert wl.num_tasks == tiny_system.workload.num_tasks

    def test_everything_else_preserved(self, tiny_system, rng):
        wl = with_priorities(tiny_system.workload, rng)
        for a, b in zip(tiny_system.workload.tasks, wl.tasks):
            assert a.task_id == b.task_id
            assert a.arrival == b.arrival
            assert a.deadline == b.deadline

    def test_custom_probabilities(self, tiny_system, rng):
        wl = with_priorities(
            tiny_system.workload, rng, levels=(1.0, 8.0), probabilities=(0.0, 1.0)
        )
        assert all(t.priority == 8.0 for t in wl.tasks)

    def test_rejects_bad_levels(self, tiny_system, rng):
        with pytest.raises(ValueError):
            with_priorities(tiny_system.workload, rng, levels=(0.0,))

    def test_rejects_misaligned_probs(self, tiny_system, rng):
        with pytest.raises(ValueError):
            with_priorities(
                tiny_system.workload, rng, levels=(1.0, 2.0), probabilities=(1.0,)
            )


class TestPriorityLightestLoad:
    def cands(self) -> CandidateSet:
        return CandidateSet(
            core_ids=np.array([0, 1]),
            pstates=np.array([0, 0]),
            queue_len=np.zeros(2, dtype=np.int64),
            eet=np.array([10.0, 10.0]),
            eec=np.array([10.0, 20.0]),
            ect=np.array([10.0, 10.0]),
            prob_on_time=np.array([0.5, 0.8]),
        )

    def ctx(self, priority: float) -> MappingContext:
        return MappingContext(
            t_now=0.0,
            task=Task(0, 0, 0.0, 100.0, priority=priority),
            energy_estimate=100.0,
            tasks_left=5,
            avg_queue_depth=0.0,
        )

    def test_unit_priority_reduces_to_ll(self, tiny_system):
        c1, c2 = self.cands(), self.cands()
        assert PriorityLightestLoad().select(c1, self.ctx(1.0)) == LightestLoad().select(
            c2, self.ctx(1.0)
        )

    def test_high_priority_flips_choice_toward_robustness(self):
        # Cheap-but-risky (EEC 1, rho 0.5) vs dear-but-safe (EEC 10,
        # rho 0.9): LL picks the cheap one; a 4x-priority task flips.
        def cands() -> CandidateSet:
            import numpy as np

            return CandidateSet(
                core_ids=np.array([0, 1]),
                pstates=np.array([0, 0]),
                queue_len=np.zeros(2, dtype=np.int64),
                eet=np.array([10.0, 10.0]),
                eec=np.array([1.0, 10.0]),
                ect=np.array([10.0, 10.0]),
                prob_on_time=np.array([0.5, 0.9]),
            )

        assert PriorityLightestLoad().select(cands(), self.ctx(1.0)) == 0
        assert PriorityLightestLoad().select(cands(), self.ctx(4.0)) == 1

    def test_perfect_robustness_never_explodes(self):
        # rho == 1.0 gives zero miss probability; the clip keeps the
        # power well-defined for any priority.
        c = self.cands()
        c.prob_on_time[:] = 1.0
        assert PriorityLightestLoad().select(c, self.ctx(8.0)) is not None

    def test_name(self):
        assert PriorityLightestLoad().name == "LL-prio"


class TestPriorityEnergyFilter:
    def ctx(self, priority: float, depth: float = 1.0) -> MappingContext:
        return MappingContext(
            t_now=0.0,
            task=Task(0, 0, 0.0, 100.0, priority=priority),
            energy_estimate=1000.0,
            tasks_left=10,
            avg_queue_depth=depth,
        )

    def test_unit_priority_matches_plain_filter(self):
        from repro.filters.energy_filter import EnergyFilter
        from repro.extensions.priorities import PriorityEnergyFilter

        plain = EnergyFilter()
        prio = PriorityEnergyFilter(mean_priority=1.0)
        assert prio.fair_share(self.ctx(1.0)) == pytest.approx(
            plain.fair_share(self.ctx(1.0))
        )

    def test_share_scales_with_priority(self):
        from repro.extensions.priorities import PriorityEnergyFilter

        f = PriorityEnergyFilter(mean_priority=2.0)
        assert f.fair_share(self.ctx(4.0)) == pytest.approx(
            2.0 * f.fair_share(self.ctx(2.0))
        )
        assert f.fair_share(self.ctx(1.0)) == pytest.approx(
            0.5 * f.fair_share(self.ctx(2.0))
        )

    def test_for_workload_measures_mean(self, tiny_system, rng):
        from repro.extensions.priorities import PriorityEnergyFilter

        wl = with_priorities(
            tiny_system.workload, rng, levels=(2.0,), probabilities=(1.0,)
        )
        f = PriorityEnergyFilter.for_workload(wl)
        assert f.mean_priority == pytest.approx(2.0)

    def test_rejects_bad_mean(self):
        from repro.extensions.priorities import PriorityEnergyFilter

        with pytest.raises(ValueError):
            PriorityEnergyFilter(mean_priority=0.0)

    def test_label(self):
        from repro.extensions.priorities import PriorityEnergyFilter

        assert PriorityEnergyFilter().label == "en-prio"


class TestWeightedMissed:
    def test_matches_unweighted_for_unit_priorities(self, tiny_system):
        result = run_trial(tiny_system, LightestLoad(), build_filter_chain("en+rob"))
        wm = weighted_missed(result, tiny_system.workload)
        assert wm == pytest.approx(result.missed / result.num_tasks)

    def test_requires_outcomes(self, tiny_system):
        from dataclasses import replace

        result = run_trial(tiny_system, LightestLoad(), build_filter_chain("none"))
        stripped = replace(result, outcomes=())
        with pytest.raises(ValueError):
            weighted_missed(stripped, tiny_system.workload)

    def test_bounded(self, tiny_system, rng):
        wl = with_priorities(tiny_system.workload, rng, levels=(1.0, 4.0))
        result = run_trial(tiny_system, LightestLoad(), build_filter_chain("en+rob"))
        wm = weighted_missed(result, wl)
        assert 0.0 <= wm <= 1.0
