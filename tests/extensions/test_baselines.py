"""Tests for the extended baseline heuristics (repro.extensions.baselines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions.baselines import (
    EXTENDED_HEURISTICS,
    KPercentBest,
    MinimumExecutionTime,
    MinimumExpectedEnergy,
    OpportunisticLoadBalancing,
    make_extended_heuristic,
)
from repro.filters.chain import build_filter_chain
from repro.heuristics.base import CandidateSet, MappingContext
from repro.sim.engine import run_trial
from repro.workload.task import Task


def cands() -> CandidateSet:
    # Two cores x two P-states; core 0 is busy (later ready), core 1 idle.
    return CandidateSet(
        core_ids=np.repeat([0, 1], 2),
        pstates=np.tile([0, 1], 2),
        queue_len=np.repeat([2, 0], 2),
        eet=np.array([8.0, 12.0, 10.0, 15.0]),
        eec=np.array([9.0, 5.0, 11.0, 6.0]),
        ect=np.array([38.0, 42.0, 10.0, 15.0]),  # ready: 30 vs 0
        prob_on_time=np.array([0.3, 0.2, 0.95, 0.9]),
    )


def ctx() -> MappingContext:
    return MappingContext(
        t_now=0.0,
        task=Task(0, 0, 0.0, 60.0),
        energy_estimate=100.0,
        tasks_left=5,
        avg_queue_depth=1.0,
    )


class TestMET:
    def test_picks_global_min_eet(self):
        assert MinimumExecutionTime().select(cands(), ctx()) == 0

    def test_load_blind(self):
        # Even though core 0 is backlogged, MET still goes there.
        c = cands()
        assert c.queue_len[MinimumExecutionTime().select(c, ctx())] == 2

    def test_respects_mask(self):
        c = cands()
        c.mask[0] = False
        assert MinimumExecutionTime().select(c, ctx()) == 2


class TestOLB:
    def test_picks_earliest_ready_core(self):
        choice = OpportunisticLoadBalancing().select(cands(), ctx())
        assert cands().core_ids[choice] == 1

    def test_tie_break_lowest_energy(self):
        # Within core 1 the two P-states tie on readiness -> cheapest EEC.
        choice = OpportunisticLoadBalancing().select(cands(), ctx())
        assert choice == 3  # EEC 6.0 < 11.0

    def test_none_when_empty(self):
        c = cands()
        c.mask[:] = False
        assert OpportunisticLoadBalancing().select(c, ctx()) is None


class TestKPB:
    def test_full_percentage_is_mect(self):
        c = cands()
        assert KPercentBest(100.0).select(c, ctx()) == int(np.argmin(c.ect))

    def test_small_percentage_approaches_met(self):
        c = cands()
        assert KPercentBest(1.0).select(c, ctx()) == int(np.argmin(c.eet))

    def test_mid_percentage_compromise(self):
        # 50% keeps EETs {8, 10}: indices 0 and 2; min ECT among them = 2.
        assert KPercentBest(50.0).select(cands(), ctx()) == 2

    def test_pool_is_post_filter(self):
        c = cands()
        c.mask[0] = False  # the global best-EET is infeasible
        choice = KPercentBest(50.0).select(c, ctx())
        assert choice != 0

    def test_rejects_bad_percent(self):
        with pytest.raises(ValueError):
            KPercentBest(0.0)

    def test_none_when_empty(self):
        c = cands()
        c.mask[:] = False
        assert KPercentBest().select(c, ctx()) is None

    def test_repr(self):
        assert "20.0" in repr(KPercentBest())


class TestMEEC:
    def test_picks_cheapest(self):
        assert MinimumExpectedEnergy().select(cands(), ctx()) == 1


class TestRegistry:
    def test_names(self):
        assert EXTENDED_HEURISTICS == ("MET", "OLB", "KPB", "MEEC")

    def test_builds_each(self):
        for name in EXTENDED_HEURISTICS:
            assert make_extended_heuristic(name).name == name

    def test_case_insensitive(self):
        assert make_extended_heuristic("olb").name == "OLB"

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_extended_heuristic("SQ")


class TestEndToEnd:
    @pytest.mark.parametrize("name", EXTENDED_HEURISTICS)
    def test_runs_full_trial(self, tiny_system, name):
        result = run_trial(
            tiny_system, make_extended_heuristic(name), build_filter_chain("en+rob")
        )
        assert result.num_tasks == tiny_system.num_tasks
        assert (
            result.missed
            == result.discarded + result.late + result.energy_cutoff
        )
