"""Tests for the repro.api facade."""

from __future__ import annotations

import pytest

from repro import api


class TestSurface:
    def test_every_exported_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_registries_enumerate_valid_names(self):
        assert api.HEURISTICS == ("SQ", "MECT", "LL", "Random")
        assert api.FILTER_VARIANTS == ("none", "en", "rob", "en+rob")


class TestScenario:
    def test_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="heuristic"):
            api.Scenario("XX")
        with pytest.raises(ValueError, match="filter"):
            api.Scenario("LL", "bogus")

    def test_overrides_apply(self):
        scenario = api.Scenario("LL", "none", seed=9, num_tasks=123)
        config = scenario.resolved_config()
        assert config.seed == 9
        assert config.workload.num_tasks == 123
        assert scenario.label == "LL/none"

    def test_explicit_config_passes_through(self):
        base = api.SimulationConfig(seed=4)
        scenario = api.Scenario("SQ", config=base)
        assert scenario.resolved_config() == base
        assert scenario.spec == api.VariantSpec("SQ", "en+rob")

    def test_seed_override_beats_config(self):
        base = api.SimulationConfig(seed=4)
        scenario = api.Scenario("SQ", seed=7, config=base)
        assert scenario.resolved_config().seed == 7


class TestRunTrial:
    SCENARIO = api.Scenario("MECT", "en+rob", seed=5, num_tasks=60)

    def test_deterministic(self):
        a = api.run_trial(self.SCENARIO)
        b = api.run_trial(self.SCENARIO)
        assert a == b
        assert a.heuristic == "MECT" and a.variant == "en+rob"
        assert a.num_tasks == 60

    def test_prebuilt_system_reuse(self):
        system = self.SCENARIO.build_system()
        assert api.run_trial(self.SCENARIO, system=system) == api.run_trial(self.SCENARIO)

    def test_perf_knobs_results_neutral(self):
        fast = api.run_trial(self.SCENARIO)
        slow = api.run_trial(self.SCENARIO, perf=api.PerfConfig.disabled())
        assert fast == slow

    def test_metrics_capture_cache_counters(self):
        metrics = api.MetricsRegistry()
        api.run_trial(self.SCENARIO, metrics=metrics)
        assert metrics.counter("perf.cache.misses") > 0
        assert metrics.counter("perf.cache.hits") > 0


class TestRunEnsemble:
    def test_scenarios_must_share_config(self):
        with pytest.raises(ValueError, match="share"):
            api.run_ensemble(
                [
                    api.Scenario("LL", seed=1, num_tasks=50),
                    api.Scenario("SQ", seed=2, num_tasks=50),
                ],
                1,
            )

    def test_paired_trials_across_scenarios(self):
        scenarios = [
            api.Scenario("LL", "en+rob", seed=3, num_tasks=40),
            api.Scenario("SQ", "none", seed=3, num_tasks=40),
        ]
        ensemble = api.run_ensemble(scenarios, 2)
        assert ensemble.num_trials == 2
        assert ensemble.base_seed == 3  # defaulted from the shared seed
        assert set(ensemble.results) == {s.spec for s in scenarios}
        for spec in ensemble.specs:
            assert len(ensemble.results[spec]) == 2

    def test_single_scenario_accepted_bare(self):
        ensemble = api.run_ensemble(api.Scenario("LL", seed=3, num_tasks=40), 1)
        assert ensemble.specs == (api.VariantSpec("LL", "en+rob"),)
