"""Batch-equivalence parity: replay service mode reduces to run_trial.

The lazy event loop keeps exactly one pending arrival in the heap
instead of materializing the whole workload up front; for a finite
replay this must be a pure refactor — same trajectory, same scored
result, bit for bit.  These tests pin that equivalence through the
public api facade and through the digesting layer.
"""

from __future__ import annotations

import pytest

from repro import api
from repro import rng as rng_mod
from repro.obs.manifest import trial_digest
from repro.service import ServiceConfig, serve_system
from repro.sim.engine import run_trial
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def scenario() -> api.Scenario:
    return api.Scenario("LL", "en+rob", config=tiny_config(seed=123))


@pytest.fixture(scope="module")
def system(scenario):
    return scenario.build_system()


class TestReplayParity:
    @pytest.mark.parametrize(
        "heuristic,filters",
        [("LL", "en+rob"), ("MECT", "none"), ("SQ", "en"), ("Random", "rob")],
    )
    def test_replay_equals_batch_bitwise(self, system, heuristic, filters):
        scenario = api.Scenario(heuristic, filters, config=tiny_config(seed=123))
        batch = api.run_trial(scenario, system=system, keep_outcomes=True)
        svc = api.run_service(scenario, system=system)
        # Dataclass equality covers every field including per-task
        # outcomes; the digest doubles as the manifest-level check.
        assert svc.trial_result == batch
        assert trial_digest(svc.trial_result) == trial_digest(batch)

    def test_default_service_config_is_replay(self, scenario, system):
        svc = api.run_service(scenario, system=system)
        assert svc.traffic == "replay"
        assert svc.trial_result is not None

    def test_windows_are_contiguous_and_cover_the_run(self, scenario, system):
        svc = api.run_service(scenario, system=system)
        windows = svc.windows
        assert windows[0].start == 0.0
        assert windows[-1].end >= svc.makespan
        for left, right in zip(windows, windows[1:]):
            assert right.start == left.end

    def test_window_totals_match_the_scored_result(self, scenario, system):
        batch = api.run_trial(scenario, system=system)
        svc = api.run_service(scenario, system=system)
        totals = svc.totals
        assert totals.arrivals == batch.num_tasks
        assert totals.discarded == batch.discarded
        assert totals.completed == batch.num_tasks - batch.discarded
        # Replay windows and the ledger agree on consumed energy.
        assert svc.total_energy == pytest.approx(batch.total_energy, rel=1e-9)
        assert totals.energy == pytest.approx(batch.total_energy, rel=1e-9)

    def test_truncated_replay_is_unscored_and_bounded(self, scenario, system):
        svc = api.run_service(
            scenario, ServiceConfig(traffic="replay", task_limit=20), system=system
        )
        assert svc.trial_result is None
        assert svc.arrivals == 20

    def test_horizon_bounds_admissions(self, scenario, system):
        full = api.run_service(scenario, system=system)
        cut = full.makespan / 3.0
        svc = api.run_service(
            scenario, ServiceConfig(traffic="replay", horizon=cut), system=system
        )
        expected = sum(1 for t in system.workload.tasks if t.arrival <= cut)
        assert svc.arrivals == expected


class TestLowLevelParity:
    def test_serve_system_matches_engine_run_trial(self, system):
        spec = api.VariantSpec("LL", "en+rob")
        heuristic = api.build_heuristic(
            "LL", rng_mod.stream(system.config.seed, "heuristic", spec.label)
        )
        chain = api.build_filter_chain("en+rob", system.config.filters)
        batch = run_trial(system, heuristic, chain)
        svc = serve_system(system, spec, ServiceConfig(traffic="replay"))
        assert svc.trial_result == batch
