"""Unit and property tests for windowed service metrics (repro.sim.metrics).

WindowStats is a monoid under merge; WindowAccumulator folds an event
stream into contiguous windows with telescoping energy.  The soak test
exercises these against a live engine; here they run against synthetic
event streams so failures localize.
"""

from __future__ import annotations

import io
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import WINDOW_FORMAT, ServiceConfig, window_rows, write_windows_jsonl
from repro.sim.metrics import WindowAccumulator, WindowStats

counts = st.integers(min_value=0, max_value=50)


def window_stats(draw_start: float, length: float, draw) -> WindowStats:
    on_time, late = draw(counts), draw(counts)
    return WindowStats(
        start=draw_start,
        end=draw_start + length,
        mapped=draw(counts),
        discarded=draw(counts),
        completed=on_time + late,
        on_time=on_time,
        late=late,
        energy=draw(st.floats(min_value=0.0, max_value=1e6)),
        budget_remaining=draw(st.floats(min_value=0.0, max_value=1e9)),
        in_system_end=draw(counts),
    )


class TestWindowStats:
    def test_validation(self):
        with pytest.raises(ValueError):
            WindowStats(start=1.0, end=0.5)
        with pytest.raises(ValueError):
            WindowStats(start=0.0, end=1.0, mapped=-1)
        with pytest.raises(ValueError):
            WindowStats(start=0.0, end=1.0, completed=2, on_time=1, late=0)

    def test_merge_requires_contiguity(self):
        a = WindowStats(start=0.0, end=1.0)
        b = WindowStats(start=2.0, end=3.0)
        with pytest.raises(ValueError, match="contiguous"):
            a.merge(b)

    def test_merge_all_rejects_empty(self):
        with pytest.raises(ValueError):
            WindowStats.merge_all([])

    @settings(max_examples=50)
    @given(data=st.data(), lengths=st.lists(
        st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=8))
    def test_merge_is_associative_fold(self, data, lengths):
        windows, t = [], 0.0
        for length in lengths:
            windows.append(window_stats(t, length, data.draw))
            t += length
        total = WindowStats.merge_all(windows)
        assert total.start == windows[0].start
        assert total.end == windows[-1].end
        assert total.mapped == sum(w.mapped for w in windows)
        assert total.completed == sum(w.completed for w in windows)
        assert total.arrivals == sum(w.arrivals for w in windows)
        assert total.energy == pytest.approx(sum(w.energy for w in windows))
        # State-at-end fields are last-wins.
        assert total.budget_remaining == windows[-1].budget_remaining
        assert total.in_system_end == windows[-1].in_system_end
        # Pairwise left fold equals merge_all (associativity over a run).
        left = windows[0]
        for w in windows[1:]:
            left = left.merge(w)
        assert left == total

    def test_to_dict_maps_nan_budget_to_none(self):
        w = WindowStats(start=0.0, end=1.0)
        assert w.to_dict()["budget_remaining"] is None
        w = WindowStats(start=0.0, end=1.0, budget_remaining=3.0)
        assert w.to_dict()["budget_remaining"] == 3.0


class TestWindowAccumulator:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            WindowAccumulator(0.0)

    def test_events_land_in_their_windows(self):
        acc = WindowAccumulator(10.0)
        acc.on_mapped(1.0, 1)
        acc.on_mapped(9.9, 2)
        acc.on_completion(12.0, False, 1)
        acc.on_discarded(25.0, 1)
        windows = acc.flush(25.0)
        assert [w.arrivals for w in windows] == [2, 0, 1]
        assert [w.completed for w in windows] == [0, 1, 0]
        assert windows[0].in_system_end == 2
        assert windows[2].discarded == 1

    def test_empty_gap_windows_are_emitted(self):
        acc = WindowAccumulator(5.0)
        acc.on_mapped(1.0, 1)
        acc.on_mapped(22.0, 2)
        windows = acc.flush(22.0)
        assert len(windows) == 5
        assert [w.arrivals for w in windows] == [1, 0, 0, 0, 1]

    def test_flush_with_no_events_returns_one_window(self):
        windows = WindowAccumulator(5.0).flush(0.0)
        assert len(windows) == 1
        assert windows[0].arrivals == 0

    def test_telescoping_energy_sums_to_total(self):
        energy = lambda t: 3.0 * t  # noqa: E731 - a linear meter stub
        acc = WindowAccumulator(10.0, energy_at=energy)
        for t in (2.0, 17.0, 34.0):
            acc.on_mapped(t, 1)
        windows = acc.flush(35.0)
        assert sum(w.energy for w in windows) == pytest.approx(energy(35.0))
        assert WindowStats.merge_all(windows).energy == pytest.approx(energy(35.0))

    def test_late_counts_split(self):
        acc = WindowAccumulator(10.0)
        acc.on_completion(1.0, False, 0)
        acc.on_completion(2.0, True, 0)
        (w,) = acc.flush(2.0)
        assert (w.completed, w.on_time, w.late) == (2, 1, 1)


class TestWindowRows:
    def _result(self):
        from repro.service import ServiceResult

        windows = (
            WindowStats(start=0.0, end=5.0, mapped=3, completed=1, on_time=1),
            WindowStats(start=5.0, end=10.0, mapped=2, completed=3, on_time=2, late=1),
        )
        return ServiceResult(
            label="LL/en+rob",
            seed=9,
            traffic="poisson",
            window=5.0,
            windows=windows,
            makespan=10.0,
        )

    def test_rows_are_self_describing(self):
        rows = list(window_rows(self._result()))
        assert [r["index"] for r in rows] == [0, 1]
        for row in rows:
            assert row["format"] == WINDOW_FORMAT
            assert row["label"] == "LL/en+rob"
            assert row["seed"] == 9
            assert row["arrivals"] == row["mapped"] + row["discarded"]
            assert row["completed"] == row["on_time"] + row["late"]

    def test_write_windows_jsonl_round_trips(self, tmp_path):
        path = tmp_path / "w.jsonl"
        count = write_windows_jsonl(self._result(), path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed == list(window_rows(self._result()))

    def test_write_windows_jsonl_accepts_a_handle(self):
        buf = io.StringIO()
        count = write_windows_jsonl(self._result(), buf)
        assert count == 2
        assert len(buf.getvalue().splitlines()) == 2
