"""Unit and property tests for the token-bucket allowance (repro.sim.state)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.state import RollingEnergyBudget


class TestRollingEnergyBudget:
    def test_starts_full_by_default(self):
        b = RollingEnergyBudget(rate=2.0, cap=10.0)
        assert b.remaining == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingEnergyBudget(rate=-1.0, cap=10.0)
        with pytest.raises(ValueError):
            RollingEnergyBudget(rate=1.0, cap=0.0)
        with pytest.raises(ValueError):
            RollingEnergyBudget(rate=1.0, cap=10.0, initial=11.0)
        with pytest.raises(ValueError):
            RollingEnergyBudget(rate=1.0, cap=10.0, initial=-1.0)

    def test_accrues_at_rate_up_to_cap(self):
        b = RollingEnergyBudget(rate=2.0, cap=10.0, initial=0.0)
        assert b.advance(3.0) == pytest.approx(6.0)
        assert b.advance(10.0) == 10.0  # capped

    def test_draw_clamps_at_zero_and_tracks_deficit(self):
        b = RollingEnergyBudget(rate=1.0, cap=10.0)
        assert b.draw(4.0) == pytest.approx(6.0)
        assert b.deficit == 0.0
        assert b.draw(9.0) == 0.0
        assert b.deficit == pytest.approx(3.0)
        assert b.drawn == pytest.approx(13.0)

    def test_time_cannot_run_backwards(self):
        b = RollingEnergyBudget(rate=1.0, cap=10.0)
        b.advance(5.0)
        with pytest.raises(ValueError):
            b.advance(4.0)

    def test_peek_is_read_only(self):
        b = RollingEnergyBudget(rate=2.0, cap=100.0, initial=0.0)
        assert b.peek(3.0) == pytest.approx(6.0)
        assert b.remaining == 0.0  # unchanged
        b.advance(1.0)
        assert b.peek(0.5) == b.remaining  # the past reads the present

    @settings(max_examples=50)
    @given(
        rate=st.floats(min_value=0.0, max_value=100.0),
        cap=st.floats(min_value=0.1, max_value=1e6),
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),  # dt
                st.floats(min_value=0.0, max_value=1e5),  # draw
            ),
            max_size=30,
        ),
    )
    def test_level_invariant_under_any_schedule(self, rate, cap, steps):
        b = RollingEnergyBudget(rate=rate, cap=cap)
        t, drawn_total = 0.0, 0.0
        for dt, joules in steps:
            t += dt
            level = b.advance(t)
            assert 0.0 <= level <= cap
            level = b.draw(joules)
            drawn_total += joules
            assert 0.0 <= level <= cap
        assert b.drawn == pytest.approx(drawn_total)
        assert b.deficit >= 0.0
        assert b.time == t
