"""Validation tests for ServiceConfig / ServiceResult (repro.service)."""

from __future__ import annotations

import pytest

from repro.service import TRAFFIC_MODELS, ServiceConfig


class TestServiceConfig:
    def test_defaults_are_generative_and_need_a_bound(self):
        with pytest.raises(ValueError, match="unbounded"):
            ServiceConfig()

    def test_replay_needs_no_bound(self):
        cfg = ServiceConfig(traffic="replay")
        assert cfg.horizon is None and cfg.task_limit is None

    @pytest.mark.parametrize("traffic", TRAFFIC_MODELS)
    def test_every_model_accepts_a_horizon(self, traffic):
        assert ServiceConfig(traffic=traffic, horizon=100.0).traffic == traffic

    def test_rejects_unknown_traffic(self):
        with pytest.raises(ValueError, match="unknown traffic model"):
            ServiceConfig(traffic="bursty", horizon=1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_mult": 0.0},
            {"rate_mult": -1.0},
            {"swing": -0.1},
            {"swing": 1.0},
            {"phase_length": 0.0},
            {"window": -5.0},
            {"horizon": 0.0},
            {"task_limit": 0},
            {"budget_rate_mult": 0.0},
            {"budget_cap_windows": 0.0},
            {"budget_cap": 0.0},
            {"planning_tasks": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(traffic="replay", **kwargs)

    def test_is_frozen(self):
        cfg = ServiceConfig(traffic="replay")
        with pytest.raises(AttributeError):
            cfg.traffic = "poisson"  # type: ignore[misc]
