"""Zero-telemetry neutrality: attaching a hub must not change results.

The acceptance bar for the telemetry layer is strict: with telemetry
disabled (the default NULL_TELEMETRY) a serve run must be bitwise
identical to one that never heard of telemetry, and *enabling* telemetry
must still leave the simulation trajectory untouched — the hub only
reads values the hooks already carry.  These tests pin both directions
plus the accounting ties between hub counters and window totals.
"""

from __future__ import annotations

import math

import pytest

from repro import api
from repro.obs.manifest import trial_digest
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.service import ServiceConfig
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def scenario() -> api.Scenario:
    return api.Scenario("LL", "en+rob", config=tiny_config(seed=123))


@pytest.fixture(scope="module")
def system(scenario):
    return scenario.build_system()


GENERATIVE = ServiceConfig(traffic="poisson", task_limit=150, horizon=2e5)


def fresh_telemetry() -> Telemetry:
    return Telemetry(rules=["on_time_prob<0.5:3", "queue_depth>500"])


def window_dicts(svc) -> list[dict]:
    # WindowStats is a dataclass holding nan budget_remaining on
    # budget-less runs; nan != nan, so bitwise comparison goes through
    # to_dict (nan encodes as None).
    return [w.to_dict() for w in svc.windows]


class TestResultNeutrality:
    def test_replay_is_bitwise_identical_with_telemetry_on(self, scenario, system):
        bare = api.run_service(scenario, system=system)
        tele = fresh_telemetry()
        instrumented = api.run_service(scenario, system=system, telemetry=tele)
        assert instrumented.trial_result == bare.trial_result
        assert trial_digest(instrumented.trial_result) == trial_digest(
            bare.trial_result
        )
        assert window_dicts(instrumented) == window_dicts(bare)

    def test_generative_run_is_bitwise_identical(self, scenario, system):
        bare = api.run_service(scenario, GENERATIVE, system=system)
        tele = fresh_telemetry()
        instrumented = api.run_service(
            scenario, GENERATIVE, system=system, telemetry=tele
        )
        assert window_dicts(instrumented) == window_dicts(bare)
        assert instrumented.makespan == bare.makespan
        assert instrumented.total_energy == bare.total_energy

    def test_null_telemetry_is_the_default(self, scenario, system):
        explicit = api.run_service(
            scenario, system=system, telemetry=NULL_TELEMETRY
        )
        implicit = api.run_service(scenario, system=system)
        assert explicit.trial_result == implicit.trial_result


class TestHubAccounting:
    @pytest.fixture(scope="class")
    def run(self, scenario, system):
        tele = fresh_telemetry()
        svc = api.run_service(scenario, GENERATIVE, system=system, telemetry=tele)
        return tele, svc

    def test_counters_match_window_totals(self, run):
        tele, svc = run
        totals = svc.totals
        assert tele.counters["tasks_mapped"].value == totals.mapped
        assert tele.counters["tasks_completed"].value == totals.completed
        assert tele.counters["tasks_on_time"].value == totals.on_time
        assert tele.counters["tasks_late"].value == totals.late
        assert tele.counters["tasks_discarded"].value == totals.discarded
        assert tele.counters["windows"].value == len(svc.windows)

    def test_latency_stream_counts_every_completion(self, run):
        tele, svc = run
        assert tele.latency.count == svc.totals.completed
        assert tele.latency.min >= 0.0

    def test_window_energy_sums_to_run_energy(self, run):
        tele, svc = run
        assert tele.window_energy.total == pytest.approx(svc.total_energy)

    def test_hub_history_mirrors_window_rows(self, run):
        tele, svc = run
        assert len(tele.history) == len(svc.windows)
        for row, window in zip(tele.history, svc.windows):
            assert row["end"] == window.end
            assert row["completed"] == float(window.completed)

    def test_scrape_renders_after_the_run(self, run):
        tele, _ = run
        text = tele.render_prometheus()
        assert "repro_windows_total" in text
        assert 'repro_completion_latency_seconds{quantile="0.5"}' in text

    def test_service_result_steady_state(self, run):
        _, svc = run
        summaries = svc.steady_state()
        assert "on_time_prob" in summaries and "throughput" in summaries
        for s in summaries.values():
            assert s.num_windows == len(svc.windows)
        # The run is budget-less here; burn_rate stays nan-driven.
        assert svc.budget_rate is None or svc.budget_rate > 0

    def test_live_steady_state_agrees_with_offline(self, run):
        tele, svc = run
        live = tele.steady_state()
        offline = svc.steady_state(metrics=("on_time_prob", "throughput", "power"))
        for metric in ("on_time_prob", "throughput", "power"):
            l, o = live[metric], offline[metric]
            assert l.warmup_windows == o.warmup_windows
            assert (
                l.mean == o.mean
                or (math.isnan(l.mean) and math.isnan(o.mean))
            )
