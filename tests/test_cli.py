"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import VariantSpec, run_ensemble
from repro.io.results_io import ensemble_to_dict, save_json
from tests.conftest import tiny_config

TINY = ["--tasks", "60", "--seed", "123"]


@pytest.fixture(scope="module")
def saved_ensemble(tmp_path_factory):
    specs = (VariantSpec("LL", "none"), VariantSpec("LL", "en+rob"))
    ensemble = run_ensemble(specs, tiny_config(), num_trials=3, base_seed=1)
    path = tmp_path_factory.mktemp("cli") / "ensemble.json"
    save_json(ensemble_to_dict(ensemble), path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trial_defaults(self):
        args = build_parser().parse_args(["trial"])
        assert args.heuristic == "LL"
        assert args.filters == "en+rob"

    def test_rejects_unknown_heuristic(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trial", "-H", "XYZ"])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig9"])


class TestCommands:
    def test_calibrate(self, capsys):
        assert main(["calibrate", *TINY]) == 0
        out = capsys.readouterr().out
        assert "cores=" in out

    def test_trial(self, capsys):
        # The tiny workload keeps the burst proportions valid at 60 tasks.
        assert main(["trial", "-H", "SQ", "-F", "en", "--tasks", "60", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "SQ/en" in out
        assert "missed" in out

    def test_figure_with_output(self, capsys, tmp_path):
        out_json = tmp_path / "fig.json"
        svg_dir = tmp_path / "figs"
        code = main(
            [
                "figure",
                "fig2",
                *TINY,
                "--trials",
                "2",
                "--out",
                str(out_json),
                "--svg-dir",
                str(svg_dir),
            ]
        )
        assert code == 0
        assert out_json.exists()
        assert (svg_dir / "sq_misses.svg").exists()
        data = json.loads(out_json.read_text())
        assert data["format"] == "repro.ensemble/1"
        out = capsys.readouterr().out
        assert "SQ" in out

    def test_report_from_saved(self, capsys, saved_ensemble):
        assert main(["report", str(saved_ensemble)]) == 0
        out = capsys.readouterr().out
        assert "LL" in out and "en+rob" in out

    def test_compare_from_saved(self, capsys, saved_ensemble):
        code = main(["compare", str(saved_ensemble), "LL/none", "LL/en+rob"])
        assert code == 0
        out = capsys.readouterr().out
        assert "p=" in out
        assert "significant" in out

    def test_compare_rejects_bad_spec(self, saved_ensemble):
        with pytest.raises(SystemExit):
            main(["compare", str(saved_ensemble), "LLnone", "LL/en+rob"])

    def test_sweep(self, capsys):
        code = main(
            [
                "sweep",
                *TINY,
                "--multipliers",
                "0.5",
                "2.0",
                "--specs",
                "MECT/none",
                "--trials",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "budget_mult" in out
        assert "MECT/none" in out
