"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import VariantSpec, run_ensemble
from repro.io.results_io import ensemble_to_dict, save_json
from tests.conftest import tiny_config

TINY = ["--tasks", "60", "--seed", "123"]


@pytest.fixture(scope="module")
def saved_ensemble(tmp_path_factory):
    specs = (VariantSpec("LL", "none"), VariantSpec("LL", "en+rob"))
    ensemble = run_ensemble(specs, tiny_config(), num_trials=3, base_seed=1)
    path = tmp_path_factory.mktemp("cli") / "ensemble.json"
    save_json(ensemble_to_dict(ensemble), path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trial_defaults(self):
        args = build_parser().parse_args(["trial"])
        assert args.heuristic == "LL"
        assert args.filters == "en+rob"

    def test_rejects_unknown_heuristic(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trial", "-H", "XYZ"])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig9"])


class TestCommands:
    def test_calibrate(self, capsys):
        assert main(["calibrate", *TINY]) == 0
        out = capsys.readouterr().out
        assert "cores=" in out

    def test_trial(self, capsys):
        # The tiny workload keeps the burst proportions valid at 60 tasks.
        assert main(["trial", "-H", "SQ", "-F", "en", "--tasks", "60", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "SQ/en" in out
        assert "missed" in out

    def test_figure_with_output(self, capsys, tmp_path):
        out_json = tmp_path / "fig.json"
        svg_dir = tmp_path / "figs"
        code = main(
            [
                "figure",
                "fig2",
                *TINY,
                "--trials",
                "2",
                "--out",
                str(out_json),
                "--svg-dir",
                str(svg_dir),
            ]
        )
        assert code == 0
        assert out_json.exists()
        assert (svg_dir / "sq_misses.svg").exists()
        data = json.loads(out_json.read_text())
        assert data["format"] == "repro.ensemble/1"
        out = capsys.readouterr().out
        assert "SQ" in out

    def test_report_from_saved(self, capsys, saved_ensemble):
        assert main(["report", str(saved_ensemble)]) == 0
        out = capsys.readouterr().out
        assert "LL" in out and "en+rob" in out

    def test_compare_from_saved(self, capsys, saved_ensemble):
        code = main(["compare", str(saved_ensemble), "LL/none", "LL/en+rob"])
        assert code == 0
        out = capsys.readouterr().out
        assert "p=" in out
        assert "significant" in out

    def test_compare_rejects_bad_spec(self, saved_ensemble):
        with pytest.raises(SystemExit):
            main(["compare", str(saved_ensemble), "LLnone", "LL/en+rob"])

    def test_trial_with_trace_and_metrics(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "trial",
                "--tasks", "60", "--seed", "5",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "events" in out
        from repro.io.trace_io import load_trace

        events = load_trace(trace)
        assert events[0].kind == "trial_started"
        assert events[-1].kind == "trial_finished"
        data = json.loads(metrics.read_text())
        assert data["format"] == "repro.metrics/1"
        assert data["counters"]["trials_run"] == 1

    def test_sweep(self, capsys):
        code = main(
            [
                "sweep",
                *TINY,
                "--multipliers",
                "0.5",
                "2.0",
                "--specs",
                "MECT/none",
                "--trials",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "budget_mult" in out
        assert "MECT/none" in out


class TestManifests:
    @pytest.fixture(scope="class")
    def figure_run(self, tmp_path_factory):
        outdir = tmp_path_factory.mktemp("manifest")
        out_json = outdir / "fig.json"
        metrics = outdir / "metrics.json"
        code = main(
            [
                "figure", "fig2", *TINY,
                "--trials", "2",
                "--out", str(out_json),
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        return out_json, out_json.with_suffix(".manifest.json"), metrics

    def test_figure_writes_manifest_and_metrics(self, figure_run):
        out_json, manifest_path, metrics = figure_run
        assert manifest_path.exists()
        assert json.loads(manifest_path.read_text())["format"] == "repro.manifest/1"
        assert json.loads(metrics.read_text())["counters"]["trials_run"] > 0

    def test_inspect_manifest(self, capsys, figure_run):
        _out_json, manifest_path, _metrics = figure_run
        assert main(["inspect-manifest", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "base seed" in out

    def test_inspect_manifest_verifies_matching_results(self, capsys, figure_run):
        out_json, manifest_path, _metrics = figure_run
        code = main(
            ["inspect-manifest", str(manifest_path), "--results", str(out_json)]
        )
        assert code == 0
        assert "results match" in capsys.readouterr().out

    def test_inspect_manifest_flags_mismatch(self, capsys, figure_run, tmp_path):
        out_json, manifest_path, _metrics = figure_run
        doc = json.loads(manifest_path.read_text())
        doc["trial_digests"] = {
            k: ["0" * 64] * len(v) for k, v in doc["trial_digests"].items()
        }
        tampered = tmp_path / "tampered.manifest.json"
        tampered.write_text(json.dumps(doc))
        code = main(["inspect-manifest", str(tampered), "--results", str(out_json)])
        assert code == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_inspect_manifest_with_trace(self, capsys, figure_run, tmp_path):
        _out_json, manifest_path, _metrics = figure_run
        trace = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "trial", "--tasks", "60", "--seed", "5",
                    "--trace-out", str(trace),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(["inspect-manifest", str(manifest_path), "--trace", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "tasks mapped" in out


class TestResilienceFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["figure", "fig2"])
        assert args.checkpoint is None
        assert args.resume is False
        assert args.trial_timeout is None
        assert args.max_retries == 2

    def test_flags_on_every_ensemble_subcommand(self):
        for cmd in (["figure", "fig2"], ["grid"], ["sweep"]):
            args = build_parser().parse_args(
                [*cmd, "--checkpoint", "c.jsonl", "--resume",
                 "--trial-timeout", "30", "--max-retries", "1"]
            )
            assert args.checkpoint == "c.jsonl"
            assert args.resume is True
            assert args.trial_timeout == 30.0
            assert args.max_retries == 1

    def test_figure_checkpoint_and_resume(self, capsys, tmp_path):
        shard = tmp_path / "fig.ckpt.jsonl"
        base = ["figure", "fig2", *TINY, "--trials", "2",
                "--checkpoint", str(shard)]
        assert main(base) == 0
        assert shard.exists()
        first_out = capsys.readouterr().out
        assert main([*base, "--resume", "--metrics-out",
                     str(tmp_path / "m.json")]) == 0
        resumed_out = capsys.readouterr().out
        # Resume reprints the same tables from checkpointed trials.
        assert first_out.splitlines()[0] in resumed_out
        data = json.loads((tmp_path / "m.json").read_text())
        assert data["counters"]["executor.trials_resumed"] == 2

    def test_resume_requires_checkpoint(self, capsys):
        with pytest.raises(ValueError, match="checkpoint"):
            main(["figure", "fig2", *TINY, "--trials", "2", "--resume"])


class TestProfilingFlags:
    def test_parser_defaults(self):
        for cmd in (["trial"], ["figure", "fig2"], ["grid"]):
            args = build_parser().parse_args(cmd)
            assert args.profile_out is None
            assert args.timeline_out is None
            assert args.timeline_dt == 60.0

    @pytest.fixture(scope="class")
    def profiled_trial(self, tmp_path_factory):
        outdir = tmp_path_factory.mktemp("profiled")
        prof = outdir / "prof.json"
        tl = outdir / "tl.json"
        code = main(
            [
                "trial", "--tasks", "60", "--seed", "5",
                "--profile-out", str(prof),
                "--timeline-out", str(tl),
                "--timeline-dt", "30",
            ]
        )
        assert code == 0
        return prof, tl

    def test_trial_writes_chrome_trace(self, profiled_trial):
        prof, _tl = profiled_trial
        doc = json.loads(prof.read_text())
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert spans
        for e in spans:
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0
        names = {e["name"] for e in spans}
        assert {"engine.arrival", "filters.chain", "heuristic.LL"} <= names

    def test_trial_writes_timeline(self, profiled_trial):
        _prof, tl = profiled_trial
        doc = json.loads(tl.read_text())
        assert doc["format"] == "repro.timeline/1"
        assert doc["dt"] == 30.0
        (stream,) = doc["streams"]
        assert stream["t"] == sorted(stream["t"])
        assert len(stream["t"]) > 1

    def test_trace_check_script_accepts_profile(self, profiled_trial):
        import pathlib
        import subprocess
        import sys

        prof, _tl = profiled_trial
        repo = pathlib.Path(__file__).resolve().parents[1]
        proc = subprocess.run(
            [sys.executable, str(repo / "scripts" / "trace_check.py"), str(prof)],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "ok" in proc.stdout

    def test_profile_command_renders_table(self, capsys, profiled_trial):
        prof, tl = profiled_trial
        assert main(["profile", str(prof), "--timeline", str(tl)]) == 0
        out = capsys.readouterr().out
        assert "| span" in out
        assert "engine.arrival" in out
        assert "| timeline" in out

    def test_profile_command_writes_svgs(self, capsys, profiled_trial, tmp_path):
        prof, tl = profiled_trial
        svg_dir = tmp_path / "svgs"
        assert main(
            ["profile", str(prof), "--timeline", str(tl), "--svg-dir", str(svg_dir)]
        ) == 0
        capsys.readouterr()
        svgs = list(svg_dir.glob("timeline_*.svg"))
        assert len(svgs) == 1
        assert svgs[0].read_text().startswith("<svg")

    def test_figure_profile_round_trip(self, capsys, tmp_path):
        prof = tmp_path / "fig.prof.json"
        tl = tmp_path / "fig.tl.json"
        code = main(
            [
                "figure", "fig2", *TINY, "--trials", "2",
                "--profile-out", str(prof),
                "--timeline-out", str(tl),
            ]
        )
        assert code == 0
        capsys.readouterr()
        doc = json.loads(prof.read_text())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        # Supervisor stream + one per trial.
        assert {m["args"]["name"] for m in meta} == {
            "supervisor", "trial-0", "trial-1",
        }
        tl_doc = json.loads(tl.read_text())
        # fig2 runs 4 specs x 2 trials.
        assert len(tl_doc["streams"]) == 8


class TestInspectManifestMetrics:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        outdir = tmp_path_factory.mktemp("companions")
        code = main(
            [
                "figure", "fig2", *TINY, "--trials", "2",
                "--out", str(outdir / "fig.json"),
                "--metrics-out", str(outdir / "fig.metrics.json"),
                "--profile-out", str(outdir / "fig.prof.json"),
            ]
        )
        assert code == 0
        return outdir

    def test_metrics_flag_defaults_to_sibling(self, capsys, run_dir):
        manifest = run_dir / "fig.manifest.json"
        assert main(["inspect-manifest", str(manifest), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "## Counters" in out
        assert "trials_run" in out

    def test_metrics_flag_accepts_profile_path(self, capsys, run_dir):
        manifest = run_dir / "fig.manifest.json"
        code = main(
            [
                "inspect-manifest", str(manifest),
                "--metrics", str(run_dir / "fig.prof.json"),
            ]
        )
        assert code == 0
        assert "| span" in capsys.readouterr().out

    def test_unrecognized_companion_rejected(self, run_dir, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"format": "repro.other/1"}))
        with pytest.raises(SystemExit):
            main(
                [
                    "inspect-manifest", str(run_dir / "fig.manifest.json"),
                    "--metrics", str(bogus),
                ]
            )


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.traffic == "poisson"
        assert args.rate_mult == 1.0
        assert args.horizon is None and args.task_limit is None
        assert args.timeline_cap is None

    def test_rejects_unknown_traffic(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--traffic", "bursty"])

    def test_unbounded_generative_traffic_exits(self):
        with pytest.raises(SystemExit, match="unbounded"):
            main(["serve", *TINY, "--traffic", "poisson"])

    def test_poisson_run_prints_windows(self, capsys, tmp_path):
        out = tmp_path / "w.jsonl"
        code = main(
            [
                "serve", *TINY,
                "--traffic", "poisson", "--task-limit", "80",
                "--windows-out", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "80 arrivals" in text
        assert "allowance drawn" in text
        assert f"wrote {out}" in text
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert all(row["format"] == "repro.window/1" for row in rows)
        assert sum(row["arrivals"] for row in rows) == 80

    def test_replay_prints_batch_equivalent_score(self, capsys):
        assert main(["serve", *TINY, "--traffic", "replay"]) == 0
        text = capsys.readouterr().out
        assert "batch-equivalent score" in text
        assert "60 arrivals" in text

    def test_ring_timeline_output(self, capsys, tmp_path):
        out = tmp_path / "tl.json"
        code = main(
            [
                "serve", *TINY,
                "--traffic", "diurnal", "--task-limit", "60",
                "--timeline-out", str(out), "--timeline-dt", "50",
                "--timeline-cap", "7",
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        (stream,) = data["streams"]
        assert len(stream["t"]) <= 7


class TestServeTelemetryFlags:
    def test_parser_defaults_leave_telemetry_off(self):
        args = build_parser().parse_args(["serve"])
        assert args.telemetry_port is None
        assert args.telemetry_out is None
        assert args.slo is None
        assert args.telemetry_linger == 0.0

    def test_bad_slo_spec_exits(self):
        with pytest.raises(SystemExit, match="--slo"):
            main(
                [
                    "serve", *TINY, "--traffic", "replay",
                    "--slo", "on_time_prob",
                ]
            )

    def test_telemetry_out_writes_scrape_and_summary(self, capsys, tmp_path):
        out = tmp_path / "tele.prom"
        code = main(
            [
                "serve", *TINY,
                "--traffic", "poisson", "--task-limit", "80",
                "--telemetry-out", str(out),
                "--slo", "on_time_prob<0.5:3",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "SLO health:" in text
        assert "on_time_prob<0.5:3" in text
        assert f"wrote {out}" in text
        scrape_text = out.read_text()
        assert "repro_tasks_completed_total" in scrape_text
        assert 'repro_completion_latency_seconds{quantile="0.5"}' in scrape_text

    def test_telemetry_port_serves_scrapes(self, capsys):
        # Ephemeral port; the endpoint lives only during the run, so the
        # printed URL is the observable contract here.
        code = main(
            [
                "serve", *TINY, "--traffic", "replay",
                "--telemetry-port", "0",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "telemetry: scrape http://127.0.0.1:" in text
        assert "steady state (MSER-5 warm-up, batch-means CI)" in text


class TestMonitorCommand:
    def test_single_shot_render(self, capsys, tmp_path):
        windows = tmp_path / "w.jsonl"
        code = main(
            [
                "serve", *TINY,
                "--traffic", "poisson", "--task-limit", "120",
                "--windows-out", str(windows),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["monitor", str(windows), "--tail", "4"]) == 0
        text = capsys.readouterr().out
        assert "LL/en+rob [poisson]" in text
        assert "on-time" in text

    def test_monitor_with_slo_rules(self, capsys, tmp_path):
        windows = tmp_path / "w.jsonl"
        main(
            [
                "serve", *TINY,
                "--traffic", "poisson", "--task-limit", "80",
                "--windows-out", str(windows),
            ]
        )
        capsys.readouterr()
        assert main(["monitor", str(windows), "--slo", "queue_depth>1e9"]) == 0
        text = capsys.readouterr().out
        assert "SLO health: OK" in text

    def test_missing_file_exits(self):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["monitor", "/nonexistent/windows.jsonl"])

    def test_bad_rule_exits(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text("")
        with pytest.raises(SystemExit, match="--slo"):
            main(["monitor", str(path), "--slo", "nonsense"])
