"""Shared fixtures and test-wide configuration.

``tiny_system`` / ``small_system`` are session-scoped because building an
execution-time table discretizes thousands of gamma laws; tests must not
mutate them (engines copy what they need — each Engine builds its own
core states and ledger).

Hypothesis runs under a registered profile: the default ``ci`` profile is
*derandomized*, so the tier-1 suite is bit-for-bit repeatable run to run
(the determinism the engine itself promises).  Set
``HYPOTHESIS_PROFILE=dev`` locally to explore fresh random examples.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro import SimulationConfig, build_trial_system
from repro.sim.system import TrialSystem

settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


def micro_config(seed: int = 1, **updates) -> SimulationConfig:
    """The smallest config that still exercises queueing (30 tasks, 2 nodes).

    Shared by the engine edge-case, determinism and observability tests,
    which previously each rebuilt it by hand.  Extra keyword sections are
    forwarded to :meth:`SimulationConfig.with_updates`.
    """
    cfg = SimulationConfig(seed=seed).with_updates(
        workload={
            "num_tasks": 30,
            "num_task_types": 5,
            "burst_head": 10,
            "burst_tail": 10,
        },
        cluster={"num_nodes": 2},
    )
    return cfg.with_updates(**updates) if updates else cfg


def tiny_config(seed: int = 123) -> SimulationConfig:
    """A fast-to-build configuration for unit tests."""
    return SimulationConfig(seed=seed).with_updates(
        workload={
            "num_tasks": 60,
            "num_task_types": 12,
            "burst_head": 15,
            "burst_tail": 15,
        },
        cluster={"num_nodes": 3},
    )


def small_config(seed: int = 11) -> SimulationConfig:
    """A paper-shaped but reduced configuration for integration tests."""
    cfg = SimulationConfig(seed=seed)
    return cfg.with_updates(
        workload={"num_tasks": 250, "burst_head": 50, "burst_tail": 50}
    )


@pytest.fixture(scope="session")
def micro_system() -> TrialSystem:
    """Session-wide micro trial system (do not mutate)."""
    return build_trial_system(micro_config())


@pytest.fixture(scope="session")
def tiny_system() -> TrialSystem:
    """Session-wide tiny trial system (do not mutate)."""
    return build_trial_system(tiny_config())


@pytest.fixture(scope="session")
def small_system() -> TrialSystem:
    """Session-wide reduced paper-shaped system (do not mutate)."""
    return build_trial_system(small_config())


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(2011)
