"""Shared fixtures.

``tiny_system`` / ``small_system`` are session-scoped because building an
execution-time table discretizes thousands of gamma laws; tests must not
mutate them (engines copy what they need — each Engine builds its own
core states and ledger).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SimulationConfig, build_trial_system
from repro.sim.system import TrialSystem


def tiny_config(seed: int = 123) -> SimulationConfig:
    """A fast-to-build configuration for unit tests."""
    return SimulationConfig(seed=seed).with_updates(
        workload={
            "num_tasks": 60,
            "num_task_types": 12,
            "burst_head": 15,
            "burst_tail": 15,
        },
        cluster={"num_nodes": 3},
    )


def small_config(seed: int = 11) -> SimulationConfig:
    """A paper-shaped but reduced configuration for integration tests."""
    cfg = SimulationConfig(seed=seed)
    return cfg.with_updates(
        workload={"num_tasks": 250, "burst_head": 50, "burst_tail": 50}
    )


@pytest.fixture(scope="session")
def tiny_system() -> TrialSystem:
    """Session-wide tiny trial system (do not mutate)."""
    return build_trial_system(tiny_config())


@pytest.fixture(scope="session")
def small_system() -> TrialSystem:
    """Session-wide reduced paper-shaped system (do not mutate)."""
    return build_trial_system(small_config())


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(2011)
