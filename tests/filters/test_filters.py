"""Tests for the energy and robustness filters (repro.filters)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FilterConfig
from repro.filters.chain import VARIANTS, FilterChain, build_filter_chain
from repro.filters.energy_filter import EnergyFilter
from repro.filters.robustness_filter import RobustnessFilter
from repro.heuristics.base import CandidateSet, MappingContext
from repro.workload.task import Task


def cands() -> CandidateSet:
    return CandidateSet(
        core_ids=np.repeat([0, 1], 2),
        pstates=np.tile([0, 1], 2),
        queue_len=np.zeros(4, dtype=np.int64),
        eet=np.array([10.0, 14.0, 11.0, 15.0]),
        eec=np.array([120.0, 60.0, 100.0, 55.0]),
        ect=np.array([10.0, 14.0, 11.0, 15.0]),
        prob_on_time=np.array([0.9, 0.6, 0.45, 0.3]),
    )


def ctx(
    energy_estimate: float = 1000.0,
    tasks_left: int = 10,
    avg_queue_depth: float = 0.5,
) -> MappingContext:
    return MappingContext(
        t_now=0.0,
        task=Task(0, 0, 0.0, 100.0),
        energy_estimate=energy_estimate,
        tasks_left=tasks_left,
        avg_queue_depth=avg_queue_depth,
    )


class TestEnergyFilter:
    def test_fair_share_formula(self):
        f = EnergyFilter(FilterConfig())
        # depth 0.5 -> zeta_mul 0.8; share = 0.8 * 1000 / 10 = 80.
        assert f.fair_share(ctx()) == pytest.approx(80.0)

    def test_eliminates_expensive_assignments(self):
        f = EnergyFilter(FilterConfig())
        c = cands()
        f.apply(c, ctx())  # share 80 -> EEC 120 and 100 rejected
        assert c.mask.tolist() == [False, True, False, True]

    def test_adaptive_multiplier_loosens_under_congestion(self):
        f = EnergyFilter(FilterConfig())
        share_idle = f.fair_share(ctx(avg_queue_depth=0.2))
        share_mid = f.fair_share(ctx(avg_queue_depth=1.0))
        share_busy = f.fair_share(ctx(avg_queue_depth=3.0))
        assert share_idle < share_mid < share_busy

    def test_exhausted_budget_blocks_everything(self):
        f = EnergyFilter(FilterConfig())
        c = cands()
        f.apply(c, ctx(energy_estimate=0.0))
        assert not c.mask.any()

    def test_negative_estimate_blocks_everything(self):
        f = EnergyFilter(FilterConfig())
        c = cands()
        f.apply(c, ctx(energy_estimate=-50.0))
        assert not c.mask.any()

    def test_last_task_gets_whole_remainder(self):
        f = EnergyFilter(FilterConfig())
        # tasks_left == 0: divisor clamps to 1.
        share = f.fair_share(ctx(energy_estimate=100.0, tasks_left=0, avg_queue_depth=1.0))
        assert share == pytest.approx(100.0)

    def test_label(self):
        assert EnergyFilter().label == "en"


class TestRobustnessFilter:
    def test_threshold_cut(self):
        f = RobustnessFilter(FilterConfig())  # rho_thresh = 0.5
        c = cands()
        f.apply(c, ctx())
        assert c.mask.tolist() == [True, True, False, False]

    def test_boundary_inclusive(self):
        f = RobustnessFilter(FilterConfig(rho_thresh=0.6))
        c = cands()
        f.apply(c, ctx())
        # prob exactly 0.6 survives (paper: rho < thresh is eliminated).
        assert c.mask.tolist() == [True, True, False, False]

    def test_zero_threshold_keeps_all(self):
        f = RobustnessFilter(FilterConfig(rho_thresh=0.0))
        c = cands()
        f.apply(c, ctx())
        assert c.mask.all()

    def test_threshold_property(self):
        assert RobustnessFilter(FilterConfig(rho_thresh=0.7)).threshold == 0.7

    def test_label(self):
        assert RobustnessFilter().label == "rob"


class TestFilterChain:
    def test_variants_constant(self):
        assert VARIANTS == ("none", "en", "rob", "en+rob")

    def test_none_chain_is_identity(self):
        chain = build_filter_chain("none")
        c = cands()
        chain.apply(c, ctx())
        assert c.mask.all()
        assert chain.label == "none"
        assert len(chain) == 0

    def test_en_chain(self):
        chain = build_filter_chain("en")
        assert chain.label == "en"
        assert len(chain) == 1

    def test_combined_chain_intersects(self):
        chain = build_filter_chain("en+rob")
        c = cands()
        chain.apply(c, ctx())
        # energy keeps {1, 3}; robustness keeps {0, 1} -> intersection {1}.
        assert c.mask.tolist() == [False, True, False, False]

    def test_order_is_immaterial(self):
        a, b = cands(), cands()
        build_filter_chain("en+rob").apply(a, ctx())
        build_filter_chain("rob+en").apply(b, ctx())
        assert a.mask.tolist() == b.mask.tolist()

    def test_chain_can_empty_the_set(self):
        chain = build_filter_chain("en+rob")
        c = cands()
        chain.apply(c, ctx(energy_estimate=1.0))
        assert c.mask.sum() == 0

    def test_case_insensitive(self):
        assert build_filter_chain("EN+ROB").label == "en+rob"

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            build_filter_chain("fast")

    def test_duplicate_part_rejected(self):
        with pytest.raises(KeyError):
            build_filter_chain("en+en")

    def test_custom_config_threads_through(self):
        cfg = FilterConfig(rho_thresh=0.99)
        chain = build_filter_chain("rob", cfg)
        c = cands()
        chain.apply(c, ctx())
        assert not c.mask.any()

    def test_repr(self):
        assert "en+rob" in repr(build_filter_chain("en+rob"))
