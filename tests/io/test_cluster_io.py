"""Tests for cluster serialization (repro.io.cluster_io)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.io.cluster_io import cluster_from_dict, cluster_to_dict


class TestRoundTrip:
    def test_identity(self, tiny_system):
        cluster = tiny_system.cluster
        rebuilt = cluster_from_dict(cluster_to_dict(cluster))
        assert rebuilt.num_nodes == cluster.num_nodes
        assert rebuilt.num_cores == cluster.num_cores
        assert np.allclose(rebuilt.power_table(), cluster.power_table())
        assert np.allclose(
            rebuilt.exec_multiplier_table(), cluster.exec_multiplier_table()
        )
        assert np.allclose(rebuilt.efficiency_vector(), cluster.efficiency_vector())

    def test_addresses_preserved(self, tiny_system):
        cluster = tiny_system.cluster
        rebuilt = cluster_from_dict(cluster_to_dict(cluster))
        assert rebuilt.core_addresses == cluster.core_addresses

    def test_json_serializable(self, tiny_system):
        text = json.dumps(cluster_to_dict(tiny_system.cluster))
        rebuilt = cluster_from_dict(json.loads(text))
        assert rebuilt.num_cores == tiny_system.cluster.num_cores

    def test_rejects_foreign_document(self):
        with pytest.raises(ValueError):
            cluster_from_dict({"format": "something/else"})
