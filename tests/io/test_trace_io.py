"""Tests for JSONL trace reading/writing (repro.io.trace_io)."""

from __future__ import annotations

import json

import pytest

from repro.io.trace_io import iter_trace, load_trace, save_trace
from repro.obs.events import (
    TaskCompleted,
    TaskDiscarded,
    TaskMapped,
    TrialFinished,
    TrialStarted,
    event_to_dict,
)

EVENTS = [
    TrialStarted(seed=1, num_tasks=2, heuristic="LL", variant="none", budget=100.0),
    TaskMapped(
        t=0.5, task_id=0, type_id=1, core_id=0, pstate=2,
        energy_estimate=90.0, queue_depth=0.0,
    ),
    TaskDiscarded(t=1.0, task_id=1, type_id=0),
    TaskCompleted(t=3.0, task_id=0, type_id=1, core_id=0),
    TrialFinished(
        makespan=3.0, missed=1, completed_within=1, discarded=1, late=0,
        energy_cutoff=0, total_energy=5.0,
    ),
]


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        path = save_trace(EVENTS, tmp_path / "trace.jsonl")
        assert load_trace(path) == EVENTS

    def test_save_creates_parent_directories(self, tmp_path):
        path = save_trace(EVENTS, tmp_path / "a" / "b" / "trace.jsonl")
        assert path.exists()

    def test_reads_jsonl_sink_output(self, tmp_path):
        from repro.obs.sinks import JsonlSink

        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            for event in EVENTS:
                sink.emit(event)
        assert load_trace(path) == EVENTS


class TestRobustness:
    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [json.dumps(event_to_dict(e)) for e in EVENTS[:2]]
        path.write_text(lines[0] + "\n\n   \n" + lines[1] + "\n")
        assert load_trace(path) == EVENTS[:2]

    def test_malformed_json_reports_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps(event_to_dict(EVENTS[0])) + "\n" + '{"kind": "task_map\n'
        )
        with pytest.raises(ValueError, match=r"trace\.jsonl:2"):
            load_trace(path)

    def test_unknown_kind_reports_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "task_teleported", "t": 1.0}\n')
        with pytest.raises(ValueError, match=r"trace\.jsonl:1"):
            load_trace(path)

    def test_iter_trace_is_lazy(self, tmp_path):
        path = save_trace(EVENTS, tmp_path / "trace.jsonl")
        iterator = iter_trace(path)
        assert next(iterator) == EVENTS[0]
