"""Tests for result serialization (repro.io.results_io)."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.experiments.executor import TrialFailure
from repro.experiments.runner import (
    PartialEnsembleResult,
    VariantSpec,
    run_ensemble,
    TrialPlan,
)
from repro.io.results_io import (
    ensemble_from_dict,
    ensemble_to_dict,
    load_json,
    save_json,
    trial_result_from_dict,
    trial_result_to_dict,
)
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def trial(tiny_system):
    return TrialPlan(
        system=tiny_system, spec=VariantSpec("MECT", "en+rob"), keep_outcomes=True
    ).run()


@pytest.fixture(scope="module")
def ensemble():
    specs = (VariantSpec("SQ", "none"), VariantSpec("SQ", "en+rob"))
    return run_ensemble(specs, tiny_config(), num_trials=2, base_seed=8)


class TestTrialRoundTrip:
    def test_scalars_preserved(self, trial):
        rebuilt = trial_result_from_dict(trial_result_to_dict(trial))
        for field in (
            "heuristic",
            "variant",
            "seed",
            "missed",
            "discarded",
            "late",
            "energy_cutoff",
            "total_energy",
            "budget",
            "makespan",
        ):
            assert getattr(rebuilt, field) == getattr(trial, field)

    def test_outcomes_dropped_by_default(self, trial):
        rebuilt = trial_result_from_dict(trial_result_to_dict(trial))
        assert rebuilt.outcomes == ()

    def test_outcomes_preserved_on_request(self, trial):
        rebuilt = trial_result_from_dict(
            trial_result_to_dict(trial, keep_outcomes=True)
        )
        assert len(rebuilt.outcomes) == len(trial.outcomes)
        a, b = trial.outcomes[0], rebuilt.outcomes[0]
        assert (a.task_id, a.core_id, a.pstate) == (b.task_id, b.core_id, b.pstate)

    def test_infinity_survives_json(self, trial):
        data = trial_result_to_dict(trial)
        text = json.dumps(data)  # must not emit bare Infinity
        rebuilt = trial_result_from_dict(json.loads(text))
        if math.isinf(trial.exhaustion_time):
            assert math.isinf(rebuilt.exhaustion_time)
        else:
            assert rebuilt.exhaustion_time == pytest.approx(trial.exhaustion_time)

    def test_nan_outcome_fields_survive(self, trial):
        data = trial_result_to_dict(trial, keep_outcomes=True)
        discarded = [o for o in data["outcomes"] if o["discarded"]]
        if not discarded:
            pytest.skip("no discarded tasks in this trial")
        rebuilt = trial_result_from_dict(json.loads(json.dumps(data)))
        d = [o for o in rebuilt.outcomes if o.discarded][0]
        assert math.isnan(d.start)

    def test_rejects_foreign_document(self):
        with pytest.raises(ValueError):
            trial_result_from_dict({"format": "x"})


class TestEnsembleRoundTrip:
    def test_identity(self, ensemble):
        rebuilt = ensemble_from_dict(ensemble_to_dict(ensemble))
        assert rebuilt.specs == ensemble.specs
        assert rebuilt.num_trials == ensemble.num_trials
        for spec in ensemble.specs:
            assert np.array_equal(rebuilt.misses(spec), ensemble.misses(spec))

    def test_json_serializable(self, ensemble):
        text = json.dumps(ensemble_to_dict(ensemble))
        rebuilt = ensemble_from_dict(json.loads(text))
        assert rebuilt.base_seed == ensemble.base_seed

    def test_report_functions_work_on_rebuilt(self, ensemble):
        from repro.experiments.report import figure_table

        rebuilt = ensemble_from_dict(ensemble_to_dict(ensemble))
        text = figure_table(rebuilt, "SQ", 60)
        assert "en+rob" in text

    def test_rejects_foreign_document(self):
        with pytest.raises(ValueError):
            ensemble_from_dict({"format": "x"})


class TestFileHelpers:
    def test_save_and_load(self, tmp_path, ensemble):
        path = save_json(ensemble_to_dict(ensemble), tmp_path / "sub" / "e.json")
        assert path.exists()
        rebuilt = ensemble_from_dict(load_json(path))
        assert rebuilt.num_trials == ensemble.num_trials


class TestPartialEnsembleRoundTrip:
    @pytest.fixture(scope="class")
    def partial(self, ensemble):
        return PartialEnsembleResult(
            specs=ensemble.specs,
            num_trials=3,
            base_seed=ensemble.base_seed,
            results=ensemble.results,
            completed_trials=(0, 1),
            failures=(
                TrialFailure(trial=2, attempts=3, fault="timeout", detail="5.0s"),
            ),
        )

    def test_round_trip_preserves_partial_metadata(self, partial):
        rebuilt = ensemble_from_dict(ensemble_to_dict(partial))
        assert isinstance(rebuilt, PartialEnsembleResult)
        assert rebuilt.num_trials == 3
        assert rebuilt.completed_trials == (0, 1)
        assert rebuilt.missing_trials == (2,)
        assert rebuilt.failures == partial.failures
        for spec in partial.specs:
            assert rebuilt.results[spec] == partial.results[spec]

    def test_partial_section_is_json_serializable(self, partial):
        data = json.loads(json.dumps(ensemble_to_dict(partial)))
        assert data["partial"]["completed_trials"] == [0, 1]
        assert data["partial"]["failures"][0]["fault"] == "timeout"

    def test_complete_ensemble_has_no_partial_section(self, ensemble):
        assert "partial" not in ensemble_to_dict(ensemble)
        rebuilt = ensemble_from_dict(ensemble_to_dict(ensemble))
        assert not isinstance(rebuilt, PartialEnsembleResult)
