"""Tests for workload serialization (repro.io.workload_io)."""

from __future__ import annotations

import json

import pytest

from repro.io.workload_io import workload_from_dict, workload_to_dict


class TestRoundTrip:
    def test_identity(self, tiny_system):
        wl = tiny_system.workload
        rebuilt = workload_from_dict(workload_to_dict(wl))
        assert rebuilt.tasks == wl.tasks
        assert rebuilt.t_avg == wl.t_avg
        assert rebuilt.rates == wl.rates

    def test_json_serializable(self, tiny_system):
        text = json.dumps(workload_to_dict(tiny_system.workload))
        rebuilt = workload_from_dict(json.loads(text))
        assert rebuilt.num_tasks == tiny_system.workload.num_tasks

    def test_priorities_preserved(self, tiny_system, rng):
        from repro.extensions.priorities import with_priorities

        wl = with_priorities(tiny_system.workload, rng, levels=(1.0, 4.0))
        rebuilt = workload_from_dict(workload_to_dict(wl))
        assert [t.priority for t in rebuilt.tasks] == [t.priority for t in wl.tasks]

    def test_default_priority_backfill(self, tiny_system):
        data = workload_to_dict(tiny_system.workload)
        for entry in data["tasks"]:
            del entry["priority"]
        rebuilt = workload_from_dict(data)
        assert all(t.priority == 1.0 for t in rebuilt.tasks)

    def test_rejects_foreign_document(self):
        with pytest.raises(ValueError):
            workload_from_dict({"format": "nope"})

    def test_validation_still_applies(self, tiny_system):
        data = workload_to_dict(tiny_system.workload)
        data["tasks"][0]["task_id"] = 99  # break density
        with pytest.raises(ValueError):
            workload_from_dict(data)
