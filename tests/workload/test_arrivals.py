"""Tests for the bursty arrival process (repro.workload.arrivals)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LambdaMode, WorkloadConfig
from repro.workload.arrivals import (
    ArrivalRates,
    bursty_poisson_arrivals,
    derive_rates,
    phase_of_task,
)


class TestArrivalRates:
    def test_valid(self):
        r = ArrivalRates(eq=1 / 28, fast=1 / 8, slow=1 / 48)
        assert r.fast > r.eq > r.slow

    def test_rejects_misordered(self):
        with pytest.raises(ValueError):
            ArrivalRates(eq=1.0, fast=0.5, slow=0.1)


class TestDeriveRates:
    def test_paper_mode_uses_absolute_values(self):
        cfg = WorkloadConfig(lambda_mode=LambdaMode.PAPER)
        r = derive_rates(cfg, num_cores=48, t_avg=1353.0)
        assert r.eq == pytest.approx(1 / 28)
        assert r.fast == pytest.approx(3.5 / 28)

    def test_derived_mode_scales_with_cluster(self):
        cfg = WorkloadConfig()
        r = derive_rates(cfg, num_cores=50, t_avg=1000.0)
        assert r.eq == pytest.approx(0.05)
        assert r.fast == pytest.approx(0.175)
        assert r.slow == pytest.approx(0.05 * cfg.slow_ratio)

    def test_derived_mode_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            derive_rates(WorkloadConfig(), num_cores=0, t_avg=1000.0)

    def test_paper_rate_triple_matches_paper(self):
        # lambda_eq = 1/28, fast = 1/8, slow = 1/48 (Section VI).
        cfg = WorkloadConfig(lambda_mode=LambdaMode.PAPER)
        r = derive_rates(cfg, num_cores=1, t_avg=1.0)
        assert r.fast == pytest.approx(1 / 8, rel=1e-9)
        assert r.slow == pytest.approx(1 / 48, rel=1e-9)


class TestPhases:
    def test_phase_boundaries(self):
        cfg = WorkloadConfig()
        assert phase_of_task(cfg, 0) == "head"
        assert phase_of_task(cfg, 199) == "head"
        assert phase_of_task(cfg, 200) == "lull"
        assert phase_of_task(cfg, 799) == "lull"
        assert phase_of_task(cfg, 800) == "tail"
        assert phase_of_task(cfg, 999) == "tail"


class TestBurstyArrivals:
    def rates(self) -> ArrivalRates:
        return ArrivalRates(eq=1 / 28, fast=1 / 8, slow=1 / 48)

    def test_count_and_monotonic(self, rng):
        cfg = WorkloadConfig()
        times = bursty_poisson_arrivals(cfg, self.rates(), rng)
        assert times.shape == (1000,)
        assert np.all(np.diff(times) >= 0)
        assert times[0] > 0

    def test_burst_gaps_are_faster(self):
        cfg = WorkloadConfig()
        rng = np.random.default_rng(0)
        times = bursty_poisson_arrivals(cfg, self.rates(), rng)
        gaps = np.diff(np.concatenate([[0.0], times]))
        head = gaps[:200].mean()
        lull = gaps[200:800].mean()
        tail = gaps[800:].mean()
        assert head < lull and tail < lull

    def test_gap_means_match_rates(self):
        cfg = WorkloadConfig()
        rng = np.random.default_rng(1)
        reps = [bursty_poisson_arrivals(cfg, self.rates(), rng) for _ in range(30)]
        gaps = np.concatenate(
            [np.diff(np.concatenate([[0.0], t]))[:200] for t in reps]
        )
        assert gaps.mean() == pytest.approx(8.0, rel=0.05)

    def test_deterministic_under_seed(self):
        cfg = WorkloadConfig()
        a = bursty_poisson_arrivals(cfg, self.rates(), np.random.default_rng(2))
        b = bursty_poisson_arrivals(cfg, self.rates(), np.random.default_rng(2))
        assert np.array_equal(a, b)

    def test_no_lull_configuration(self):
        cfg = WorkloadConfig(num_tasks=100, burst_head=50, burst_tail=50)
        times = bursty_poisson_arrivals(cfg, self.rates(), np.random.default_rng(3))
        assert times.shape == (100,)
