"""Tests for the ETC matrix wrapper (repro.workload.etc_matrix)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.etc_matrix import ETCMatrix


class TestValidation:
    def test_valid(self):
        etc = ETCMatrix(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert etc.num_task_types == 2
        assert etc.num_nodes == 2

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            ETCMatrix(np.array([1.0, 2.0]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ETCMatrix(np.array([[1.0, 0.0]]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            ETCMatrix(np.array([[1.0, float("nan")]]))

    def test_readonly(self):
        etc = ETCMatrix(np.array([[1.0, 2.0]]))
        with pytest.raises(ValueError):
            etc.means[0, 0] = 5.0

    def test_copy_decouples_from_input(self):
        arr = np.array([[1.0, 2.0]])
        etc = ETCMatrix(arr)
        arr[0, 0] = 99.0
        assert etc.means[0, 0] == 1.0


class TestAggregates:
    def test_mean_of_type(self):
        etc = ETCMatrix(np.array([[1.0, 3.0], [10.0, 30.0]]))
        assert etc.mean_of_type(0) == pytest.approx(2.0)
        assert etc.mean_of_type(1) == pytest.approx(20.0)

    def test_overall_mean(self):
        etc = ETCMatrix(np.array([[1.0, 3.0], [10.0, 30.0]]))
        assert etc.overall_mean() == pytest.approx(11.0)
