"""Tests for the execution-time pmf table (repro.workload.pmf_table)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.generator import generate_cluster
from repro.config import ClusterConfig, GridConfig
from repro.workload.etc_matrix import ETCMatrix
from repro.workload.pmf_table import ExecutionTimeTable


@pytest.fixture(scope="module")
def table():
    cluster = generate_cluster(ClusterConfig(num_nodes=3), np.random.default_rng(0))
    etc = ETCMatrix(
        np.random.default_rng(1).uniform(400.0, 1100.0, size=(6, cluster.num_nodes))
    )
    return ExecutionTimeTable(etc, cluster, GridConfig(dt=10.0), exec_cv=0.2)


class TestConstruction:
    def test_rejects_width_mismatch(self):
        cluster = generate_cluster(ClusterConfig(num_nodes=3), np.random.default_rng(0))
        etc = ETCMatrix(np.ones((4, 2)))
        with pytest.raises(ValueError):
            ExecutionTimeTable(etc, cluster, GridConfig(), exec_cv=0.2)

    def test_rejects_bad_cv(self):
        cluster = generate_cluster(ClusterConfig(num_nodes=2), np.random.default_rng(0))
        etc = ETCMatrix(np.ones((2, 2)) * 100)
        with pytest.raises(ValueError):
            ExecutionTimeTable(etc, cluster, GridConfig(), exec_cv=0.0)


class TestPMFs:
    def test_pmf_mean_matches_scaled_etc(self, table):
        etc = table.etc
        mult = table.cluster.exec_multiplier_table()
        for t in (0, 3):
            for n in range(table.cluster.num_nodes):
                for pi in (0, table.cluster.num_pstates - 1):
                    pmf = table.pmf(t, n, pi)
                    expected = etc.means[t, n] * mult[n, pi]
                    assert pmf.mean() == pytest.approx(expected, rel=0.02)

    def test_deeper_pstates_are_slower(self, table):
        for n in range(table.cluster.num_nodes):
            means = [table.pmf(0, n, pi).mean() for pi in range(table.cluster.num_pstates)]
            assert all(a < b for a, b in zip(means, means[1:]))

    def test_pmf_spread_matches_cv(self, table):
        pmf = table.pmf(1, 0, 0)
        assert pmf.std() / pmf.mean() == pytest.approx(0.2, rel=0.1)

    def test_all_pmfs_share_grid(self, table):
        dts = {
            table.pmf(t, n, pi).dt
            for t in range(2)
            for n in range(table.cluster.num_nodes)
            for pi in range(table.cluster.num_pstates)
        }
        assert dts == {10.0}


class TestExpectationTables:
    def test_eet_matches_pmf_means(self, table):
        for n in range(table.cluster.num_nodes):
            for pi in range(table.cluster.num_pstates):
                assert table.eet[2, n, pi] == pytest.approx(table.pmf(2, n, pi).mean())

    def test_eec_formula(self, table):
        # Section V-A: EEC = EET * mu(i, pi) / epsilon(i).
        power = table.cluster.power_table()
        eff = table.cluster.efficiency_vector()
        n, pi = 1, 2
        expected = table.eet[0, n, pi] * power[n, pi] / eff[n]
        assert table.eec[0, n, pi] == pytest.approx(expected)

    def test_eec_tradeoff_exists(self, table):
        # P0 is usually costlier than the deepest state (the whole point
        # of DVFS): more power but less time, power quadratic in voltage.
        eec = table.eec
        cheaper = np.mean(eec[:, :, -1] < eec[:, :, 0])
        assert cheaper > 0.8

    def test_tables_readonly(self, table):
        with pytest.raises(ValueError):
            table.eet[0, 0, 0] = 1.0
        with pytest.raises(ValueError):
            table.eec[0, 0, 0] = 1.0


class TestAggregates:
    def test_t_avg_is_mean_of_eet(self, table):
        assert table.t_avg() == pytest.approx(float(table.eet.mean()))

    def test_mean_exec_of_type(self, table):
        assert table.mean_exec_of_type(3) == pytest.approx(float(table.eet[3].mean()))

    def test_mean_exec_per_type_vector(self, table):
        vec = table.mean_exec_per_type()
        assert vec.shape == (table.etc.num_task_types,)
        assert vec[3] == pytest.approx(table.mean_exec_of_type(3))

    def test_t_avg_exceeds_base_mean(self, table):
        # Deeper P-states only slow tasks down, so averaging over
        # P-states inflates t_avg above the P0-only mean.
        assert table.t_avg() > table.etc.overall_mean()


class TestPaddedMatrices:
    def test_padding_preserves_mass(self, table):
        pad = table.padded(0, 1)
        assert np.allclose(pad.probs.sum(axis=1), 1.0)

    def test_rows_match_pmfs(self, table):
        pad = table.padded(2, 0)
        for pi in range(table.cluster.num_pstates):
            pmf = table.pmf(2, 0, pi)
            n = len(pmf)
            assert np.allclose(pad.probs[pi, :n], pmf.probs)
            assert np.allclose(pad.times[pi, :n], pmf.times)
            assert np.all(pad.probs[pi, n:] == 0.0)

    def test_matrices_readonly(self, table):
        pad = table.padded(0, 0)
        with pytest.raises(ValueError):
            pad.probs[0, 0] = 1.0
