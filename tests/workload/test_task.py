"""Tests for the Task value type (repro.workload.task)."""

from __future__ import annotations

import pytest

from repro.workload.task import Task


class TestTask:
    def test_valid(self):
        t = Task(task_id=0, type_id=3, arrival=1.0, deadline=10.0)
        assert t.priority == 1.0

    def test_rejects_deadline_before_arrival(self):
        with pytest.raises(ValueError):
            Task(task_id=0, type_id=0, arrival=10.0, deadline=5.0)

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError):
            Task(task_id=-1, type_id=0, arrival=0.0, deadline=1.0)

    def test_rejects_nonpositive_priority(self):
        with pytest.raises(ValueError):
            Task(task_id=0, type_id=0, arrival=0.0, deadline=1.0, priority=0.0)

    def test_frozen(self):
        t = Task(task_id=0, type_id=0, arrival=0.0, deadline=1.0)
        with pytest.raises(AttributeError):
            t.arrival = 5.0  # type: ignore[misc]
