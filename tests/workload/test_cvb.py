"""Tests for the CVB heterogeneity method (repro.workload.cvb)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.cvb import cvb_etc_matrix


class TestShapeAndValidity:
    def test_shape(self, rng):
        etc = cvb_etc_matrix(20, 8, 750.0, 0.25, 0.25, rng)
        assert etc.shape == (20, 8)

    def test_strictly_positive(self, rng):
        etc = cvb_etc_matrix(50, 8, 750.0, 0.5, 0.5, rng)
        assert np.all(etc > 0)

    def test_rejects_bad_dims(self, rng):
        with pytest.raises(ValueError):
            cvb_etc_matrix(0, 8, 750.0, 0.25, 0.25, rng)

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            cvb_etc_matrix(10, 8, -750.0, 0.25, 0.25, rng)
        with pytest.raises(ValueError):
            cvb_etc_matrix(10, 8, 750.0, 0.0, 0.25, rng)


class TestStatistics:
    def test_overall_mean_near_mu_task(self):
        rng = np.random.default_rng(0)
        etc = cvb_etc_matrix(400, 16, 750.0, 0.25, 0.25, rng)
        assert etc.mean() == pytest.approx(750.0, rel=0.05)

    def test_row_cov_near_v_mach(self):
        # Within a row (one task type across machines) the coefficient of
        # variation should be close to V_mach on average.
        rng = np.random.default_rng(1)
        etc = cvb_etc_matrix(300, 30, 750.0, 0.25, 0.25, rng)
        covs = etc.std(axis=1, ddof=1) / etc.mean(axis=1)
        assert float(np.mean(covs)) == pytest.approx(0.25, abs=0.03)

    def test_row_means_cov_near_v_task(self):
        # Across rows the row means vary with coefficient V_task.
        rng = np.random.default_rng(2)
        etc = cvb_etc_matrix(2000, 40, 750.0, 0.25, 0.10, rng)
        means = etc.mean(axis=1)
        cov = means.std(ddof=1) / means.mean()
        assert cov == pytest.approx(0.25, abs=0.04)

    def test_higher_v_task_spreads_rows(self):
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        lo = cvb_etc_matrix(500, 8, 750.0, 0.1, 0.25, rng1).mean(axis=1)
        hi = cvb_etc_matrix(500, 8, 750.0, 0.6, 0.25, rng2).mean(axis=1)
        assert hi.std() > lo.std()


class TestInconsistency:
    def test_matrix_is_inconsistent(self):
        # [AlS00] inconsistency: machine orderings flip between rows.
        rng = np.random.default_rng(4)
        etc = cvb_etc_matrix(100, 8, 750.0, 0.25, 0.25, rng)
        best_machine = etc.argmin(axis=1)
        assert len(set(best_machine.tolist())) > 1

    def test_deterministic_under_seed(self):
        a = cvb_etc_matrix(10, 4, 750.0, 0.25, 0.25, np.random.default_rng(5))
        b = cvb_etc_matrix(10, 4, 750.0, 0.25, 0.25, np.random.default_rng(5))
        assert np.array_equal(a, b)
