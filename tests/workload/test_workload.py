"""Tests for workload assembly (repro.workload.workload)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.generator import generate_cluster
from repro.config import ClusterConfig, GridConfig, WorkloadConfig
from repro.workload.cvb import cvb_etc_matrix
from repro.workload.etc_matrix import ETCMatrix
from repro.workload.pmf_table import ExecutionTimeTable
from repro.workload.task import Task
from repro.workload.workload import Workload, build_workload
from repro.workload.arrivals import ArrivalRates


@pytest.fixture(scope="module")
def table():
    cluster = generate_cluster(ClusterConfig(num_nodes=3), np.random.default_rng(0))
    etc = ETCMatrix(
        cvb_etc_matrix(10, cluster.num_nodes, 750.0, 0.25, 0.25, np.random.default_rng(1))
    )
    return ExecutionTimeTable(etc, cluster, GridConfig(dt=15.0), exec_cv=0.2)


def wl_config() -> WorkloadConfig:
    return WorkloadConfig(num_tasks=80, num_task_types=10, burst_head=20, burst_tail=20)


class TestBuildWorkload:
    def test_task_ids_dense_and_ordered(self, table):
        wl = build_workload(wl_config(), table, seed=5)
        assert wl.num_tasks == 80
        assert [t.task_id for t in wl.tasks] == list(range(80))

    def test_arrivals_nondecreasing(self, table):
        wl = build_workload(wl_config(), table, seed=5)
        arr = [t.arrival for t in wl.tasks]
        assert all(b >= a for a, b in zip(arr, arr[1:]))

    def test_types_in_range(self, table):
        wl = build_workload(wl_config(), table, seed=5)
        assert all(0 <= t.type_id < 10 for t in wl.tasks)

    def test_type_uniformity(self, table):
        cfg = WorkloadConfig(num_tasks=1000, num_task_types=10, burst_head=200, burst_tail=200)
        wl = build_workload(cfg, table, seed=6)
        counts = np.bincount([t.type_id for t in wl.tasks], minlength=10)
        assert counts.min() > 50  # roughly uniform over 10 types

    def test_deadline_formula_consistency(self, table):
        wl = build_workload(wl_config(), table, seed=5)
        t_avg = table.t_avg()
        for task in wl.tasks[:10]:
            expected = task.arrival + table.mean_exec_of_type(task.type_id) + t_avg
            assert task.deadline == pytest.approx(expected)

    def test_rates_derived_from_cluster(self, table):
        wl = build_workload(wl_config(), table, seed=5)
        assert wl.rates.eq == pytest.approx(table.cluster.num_cores / table.t_avg())

    def test_deterministic_under_seed(self, table):
        a = build_workload(wl_config(), table, seed=9)
        b = build_workload(wl_config(), table, seed=9)
        assert a.tasks == b.tasks

    def test_seed_changes_workload(self, table):
        a = build_workload(wl_config(), table, seed=1)
        b = build_workload(wl_config(), table, seed=2)
        assert a.tasks != b.tasks

    def test_arrival_span_positive(self, table):
        wl = build_workload(wl_config(), table, seed=5)
        assert wl.arrival_span() > 0


class TestWorkloadValidation:
    def rates(self):
        return ArrivalRates(eq=0.03, fast=0.12, slow=0.02)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Workload(tasks=(), rates=self.rates(), t_avg=100.0)

    def test_rejects_non_dense_ids(self):
        tasks = (Task(1, 0, 0.0, 10.0),)
        with pytest.raises(ValueError):
            Workload(tasks=tasks, rates=self.rates(), t_avg=100.0)

    def test_rejects_unsorted_arrivals(self):
        tasks = (
            Task(0, 0, 10.0, 20.0),
            Task(1, 0, 5.0, 20.0),
        )
        with pytest.raises(ValueError):
            Workload(tasks=tasks, rates=self.rates(), t_avg=100.0)
