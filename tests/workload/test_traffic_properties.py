"""Property tests for the lazy traffic generators (repro.workload.traffic).

Each generator is a pure function of its rng, so every property below is
deterministic per hypothesis example: statistical assertions use wide
(5-sigma) tolerances on large samples, and reproducibility assertions
demand exact float equality.
"""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import rng as rng_mod
from repro.config import WorkloadConfig
from repro.workload.traffic import (
    TaskFactory,
    diurnal_times,
    merge_times,
    mmpp_times,
    piecewise_times,
    poisson_times,
    replay_tasks,
    splice_times,
    trace_times,
)
from repro.workload.task import Task

seeds = st.integers(min_value=0, max_value=2**32 - 1)
rates = st.floats(min_value=0.01, max_value=100.0)


def take(stream, n):
    return list(itertools.islice(stream, n))


class TestPoissonTimes:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, rate=rates)
    def test_interarrival_mean_approaches_inverse_rate(self, seed, rate):
        n = 4000
        times = take(poisson_times(rate, np.random.default_rng(seed)), n)
        gaps = np.diff([0.0] + times)
        # Mean of n iid Exp(rate) draws: sd of the mean = 1/(rate*sqrt(n)).
        assert abs(gaps.mean() - 1.0 / rate) < 5.0 / (rate * math.sqrt(n))

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, rate=rates)
    def test_same_seed_is_bitwise_reproducible(self, seed, rate):
        a = take(poisson_times(rate, np.random.default_rng(seed)), 200)
        b = take(poisson_times(rate, np.random.default_rng(seed)), 200)
        assert a == b

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, rate=rates, start=st.floats(min_value=0.0, max_value=1e6))
    def test_monotone_and_after_start(self, seed, rate, start):
        times = take(poisson_times(rate, np.random.default_rng(seed), start=start), 100)
        assert all(t >= start for t in times)
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            next(poisson_times(0.0, np.random.default_rng(0)))


class TestPiecewiseTimes:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, rate=rates)
    def test_single_infinite_segment_is_poisson_bitwise(self, seed, rate):
        # The documented reduction: one open-ended segment must reproduce
        # the homogeneous generator bit for bit (same draws, same math).
        pw = take(piecewise_times([(math.inf, rate)], np.random.default_rng(seed)), 200)
        po = take(poisson_times(rate, np.random.default_rng(seed)), 200)
        assert pw == po

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, rate=rates, quiet=st.floats(min_value=1.0, max_value=1e4))
    def test_zero_rate_segments_emit_nothing(self, seed, rate, quiet):
        # busy / quiet / busy: no arrival may land inside the quiet hole.
        busy = 50.0 / rate
        schedule = [(busy, rate), (quiet, 0.0), (busy, rate)]
        times = list(piecewise_times(schedule, np.random.default_rng(seed)))
        hole = (busy, busy + quiet)
        assert not any(hole[0] <= t < hole[1] for t in times)
        assert all(0.0 <= t < 2 * busy + quiet for t in times)

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, rate=rates)
    def test_non_cycled_schedule_is_finite_and_bounded(self, seed, rate):
        dur = 20.0 / rate
        times = list(piecewise_times([(dur, rate)], np.random.default_rng(seed)))
        assert all(0.0 <= t < dur for t in times)

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, rate=rates)
    def test_cycled_schedule_is_monotone_unbounded(self, seed, rate):
        schedule = [(5.0 / rate, 2.0 * rate), (5.0 / rate, 0.0)]
        times = take(
            piecewise_times(schedule, np.random.default_rng(seed), cycle=True), 300
        )
        assert len(times) == 300  # cycling never exhausts
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            piecewise_times([], rng)
        with pytest.raises(ValueError):
            piecewise_times([(0.0, 1.0)], rng)
        with pytest.raises(ValueError):
            piecewise_times([(1.0, -1.0)], rng)
        with pytest.raises(ValueError):
            piecewise_times([(math.inf, 1.0)], rng, cycle=True)
        with pytest.raises(ValueError):
            piecewise_times([(1.0, 0.0)], rng, cycle=True)


class TestDiurnalTimes:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, swing=st.floats(min_value=0.0, max_value=0.95))
    def test_long_run_mean_rate_is_preserved(self, seed, swing):
        mean_rate, period = 1.0, 200.0
        horizon = 40 * period
        stream = diurnal_times(
            mean_rate, np.random.default_rng(seed), period=period, swing=swing
        )
        count = sum(1 for _ in itertools.takewhile(lambda t: t < horizon, stream))
        expected = mean_rate * horizon
        assert abs(count - expected) < 5.0 * math.sqrt(expected)

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_zero_swing_is_poisson_like_schedule(self, seed):
        # swing=0 makes both phases run at the mean rate; arrivals exist
        # in every half-period.
        stream = diurnal_times(2.0, np.random.default_rng(seed), period=100.0, swing=0.0)
        times = take(stream, 500)
        assert all(b >= a for a, b in zip(times, times[1:]))


class TestMmppTimes:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, rate=st.floats(min_value=0.1, max_value=10.0))
    def test_equal_rate_states_keep_the_mean(self, seed, rate):
        # With every modulation state at the same rate the long-run mean
        # interarrival must be 1/rate, whatever the dwell structure.
        stream = mmpp_times([rate, rate], [50.0 / rate, 5.0 / rate],
                            np.random.default_rng(seed))
        n = 3000
        times = take(stream, n)
        gaps = np.diff([0.0] + times)
        assert abs(gaps.mean() - 1.0 / rate) < 5.0 / (rate * math.sqrt(n))

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_same_seed_is_bitwise_reproducible(self, seed):
        a = take(mmpp_times([2.0, 0.1], [30.0, 30.0], np.random.default_rng(seed)), 200)
        b = take(mmpp_times([2.0, 0.1], [30.0, 30.0], np.random.default_rng(seed)), 200)
        assert a == b

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            mmpp_times([], [], rng)
        with pytest.raises(ValueError):
            mmpp_times([1.0], [1.0, 2.0], rng)
        with pytest.raises(ValueError):
            mmpp_times([0.0, 0.0], [1.0, 1.0], rng)
        with pytest.raises(ValueError):
            mmpp_times([1.0], [0.0], rng)


class TestCombinators:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, rate_a=rates, rate_b=rates)
    def test_merge_is_monotone(self, seed, rate_a, rate_b):
        rng = np.random.default_rng(seed)
        a = take(poisson_times(rate_a, rng), 100)
        b = take(poisson_times(rate_b, rng), 100)
        merged = take(merge_times(iter(a), iter(b)), 200)
        assert merged == sorted(a + b)

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, at=st.floats(min_value=0.1, max_value=100.0))
    def test_splice_respects_the_boundary(self, seed, at):
        rng = np.random.default_rng(seed)
        first = take(poisson_times(1.0, rng), 200)
        second = take(poisson_times(1.0, rng), 200)
        out = list(splice_times(iter(first), iter(second), at=at))
        assert all(t < at for t in out if t in set(first))
        head = [t for t in first if t < at]
        tail = [t for t in second if t >= at]
        assert out == head + tail
        assert all(b >= a for a, b in zip(out, out[1:]))

    def test_trace_times_validates_monotonicity(self):
        assert list(trace_times([1.0, 2.0, 2.0, 5.0])) == [1.0, 2.0, 2.0, 5.0]
        with pytest.raises(ValueError):
            list(trace_times([1.0, 0.5]))


class TestTaskFactory:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, start_id=st.integers(min_value=0, max_value=10_000))
    def test_stream_stamps_ids_types_and_deadlines(self, seed, start_id):
        cfg = WorkloadConfig()
        means = np.linspace(10.0, 500.0, cfg.num_task_types)
        factory = TaskFactory(cfg=cfg, mean_exec_per_type=means, t_avg=123.0)
        times = take(poisson_times(0.5, np.random.default_rng(seed)), 50)
        tasks = list(
            factory.stream(
                iter(times), rng_mod.stream(seed, "types"), start_id=start_id
            )
        )
        load = cfg.load_factor_mult * 123.0
        assert [t.task_id for t in tasks] == list(range(start_id, start_id + 50))
        for task, arrival in zip(tasks, times):
            assert task.arrival == arrival
            assert 0 <= task.type_id < cfg.num_task_types
            assert task.deadline == arrival + means[task.type_id] + load

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_same_seed_yields_identical_tasks(self, seed):
        cfg = WorkloadConfig()
        means = np.full(cfg.num_task_types, 42.0)
        factory = TaskFactory(cfg=cfg, mean_exec_per_type=means, t_avg=10.0)

        def build():
            times = poisson_times(1.0, np.random.default_rng(seed))
            return list(
                itertools.islice(
                    factory.stream(times, rng_mod.stream(seed, "types")), 64
                )
            )

        assert build() == build()

    def test_replay_tasks_round_trips(self):
        tasks = [
            Task(task_id=i, type_id=0, arrival=float(i), deadline=float(i + 10))
            for i in range(5)
        ]
        assert list(replay_tasks(tasks)) == tasks
