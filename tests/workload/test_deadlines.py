"""Tests for deadline assignment (repro.workload.deadlines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import WorkloadConfig
from repro.workload.deadlines import assign_deadlines


class TestAssignDeadlines:
    def test_formula(self):
        cfg = WorkloadConfig()
        arrivals = np.array([0.0, 10.0])
        types = np.array([1, 0])
        per_type = np.array([100.0, 200.0])
        out = assign_deadlines(cfg, arrivals, types, per_type, t_avg=150.0)
        # deadline = arrival + mean exec of type + t_avg
        assert out[0] == pytest.approx(0.0 + 200.0 + 150.0)
        assert out[1] == pytest.approx(10.0 + 100.0 + 150.0)

    def test_load_factor_multiplier(self):
        cfg = WorkloadConfig(load_factor_mult=2.0)
        out = assign_deadlines(
            cfg, np.array([5.0]), np.array([0]), np.array([100.0]), t_avg=50.0
        )
        assert out[0] == pytest.approx(5.0 + 100.0 + 100.0)

    def test_deadlines_after_arrivals(self):
        cfg = WorkloadConfig()
        rng = np.random.default_rng(0)
        arrivals = np.sort(rng.uniform(0, 1000, size=50))
        types = rng.integers(0, 3, size=50)
        per_type = rng.uniform(50, 150, size=3)
        out = assign_deadlines(cfg, arrivals, types, per_type, t_avg=100.0)
        assert np.all(out > arrivals)

    def test_rejects_shape_mismatch(self):
        cfg = WorkloadConfig()
        with pytest.raises(ValueError):
            assign_deadlines(cfg, np.zeros(3), np.zeros(2, dtype=int), np.ones(1), 1.0)

    def test_rejects_bad_t_avg(self):
        cfg = WorkloadConfig()
        with pytest.raises(ValueError):
            assign_deadlines(cfg, np.zeros(1), np.zeros(1, dtype=int), np.ones(1), 0.0)
