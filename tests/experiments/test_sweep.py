"""Tests for parameter sweeps (repro.experiments.sweep)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.experiments.runner import VariantSpec
from repro.experiments.sweep import _point_checkpoint, budget_sweep, run_sweep
from tests.conftest import tiny_config

SPECS = (VariantSpec("MECT", "none"),)


class TestRunSweep:
    def test_points_in_order(self):
        def patch(cfg: SimulationConfig, value: float) -> SimulationConfig:
            return cfg.with_updates(energy={"budget_mult": value})

        sweep = run_sweep(
            "budget_mult", [0.5, 2.0], patch, SPECS, tiny_config(), num_trials=2
        )
        assert sweep.values() == [0.5, 2.0]
        assert sweep.parameter == "budget_mult"
        assert len(sweep.points) == 2

    def test_paired_seeds_across_points(self):
        def patch(cfg, value):
            return cfg.with_updates(energy={"budget_mult": value})

        sweep = run_sweep(
            "budget_mult", [0.5, 2.0], patch, SPECS, tiny_config(), num_trials=2
        )
        seeds_a = [r.seed for r in sweep.points[0].ensemble.results[SPECS[0]]]
        seeds_b = [r.seed for r in sweep.points[1].ensemble.results[SPECS[0]]]
        assert seeds_a == seeds_b

    def test_rejects_empty_values(self):
        with pytest.raises(ValueError):
            run_sweep("x", [], lambda c, v: c, SPECS, tiny_config(), 1)

    def test_rejects_seed_changing_patch(self):
        def bad_patch(cfg, value):
            return cfg.with_seed(cfg.seed + 1)

        with pytest.raises(ValueError):
            run_sweep("x", [1], bad_patch, SPECS, tiny_config(), 1)

    def test_table_renders(self):
        sweep = budget_sweep([0.5, 2.0], SPECS, tiny_config(), num_trials=2)
        text = sweep.table(num_tasks=60)
        assert "budget_mult" in text
        assert "MECT/none" in text
        assert "out of 60" in text


class TestBudgetSweep:
    def test_tighter_budget_more_misses(self):
        sweep = budget_sweep([0.2, 5.0], SPECS, tiny_config(), num_trials=3)
        medians = sweep.medians(SPECS[0])
        assert medians[0] >= medians[1]

    def test_medians_vector(self):
        sweep = budget_sweep([0.5, 1.0, 2.0], SPECS, tiny_config(), num_trials=2)
        assert sweep.medians(SPECS[0]).shape == (3,)
        assert np.all(sweep.medians(SPECS[0]) >= 0)


class TestSweepCheckpoints:
    def test_point_shard_naming(self):
        assert _point_checkpoint(None, 0) is None
        shard = _point_checkpoint("out/sweep.jsonl", 2)
        assert shard.name == "sweep.point2.jsonl"
        assert _point_checkpoint("out/sweep", 0).name == "sweep.point0.jsonl"

    def test_each_point_gets_its_own_shard(self, tmp_path):
        shard = tmp_path / "budget.jsonl"
        budget_sweep(
            [0.5, 2.0], SPECS, tiny_config(), num_trials=2, checkpoint=shard
        )
        assert (tmp_path / "budget.point0.jsonl").exists()
        assert (tmp_path / "budget.point1.jsonl").exists()
        assert not shard.exists()

    def test_resume_reproduces_the_sweep(self, tmp_path):
        shard = tmp_path / "budget.jsonl"
        first = budget_sweep(
            [0.5, 2.0], SPECS, tiny_config(), num_trials=2, checkpoint=shard
        )
        again = budget_sweep(
            [0.5, 2.0],
            SPECS,
            tiny_config(),
            num_trials=2,
            checkpoint=shard,
            resume=True,
        )
        assert np.array_equal(first.medians(SPECS[0]), again.medians(SPECS[0]))
