"""Tests for paired comparisons (repro.experiments.compare)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.compare import PairedComparison, compare_variants
from repro.experiments.runner import EnsembleResult, VariantSpec
from repro.sim.results import TrialResult


def fake_trial(spec: VariantSpec, seed: int, missed: int, num_tasks: int = 100) -> TrialResult:
    return TrialResult(
        heuristic=spec.heuristic,
        variant=spec.variant,
        seed=seed,
        num_tasks=num_tasks,
        missed=missed,
        completed_within=num_tasks - missed,
        discarded=0,
        late=missed,
        energy_cutoff=0,
        total_energy=1.0,
        budget=2.0,
        exhaustion_time=float("inf"),
        makespan=1000.0,
        outcomes=(),
    )


def fake_ensemble(misses_a: list[int], misses_b: list[int]) -> EnsembleResult:
    a = VariantSpec("LL", "none")
    b = VariantSpec("LL", "en+rob")
    results = {
        a: tuple(fake_trial(a, i, m) for i, m in enumerate(misses_a)),
        b: tuple(fake_trial(b, i, m) for i, m in enumerate(misses_b)),
    }
    return EnsembleResult(
        specs=(a, b), num_trials=len(misses_a), base_seed=0, results=results
    )


class TestCompareVariants:
    def test_clear_improvement_is_significant(self):
        ens = fake_ensemble(
            [50, 52, 55, 48, 51, 53, 49, 50], [30, 31, 33, 28, 29, 35, 27, 30]
        )
        cmp = compare_variants(ens, VariantSpec("LL", "none"), VariantSpec("LL", "en+rob"))
        assert cmp.b_is_better
        assert cmp.wins_b == 8 and cmp.losses_b == 0
        assert cmp.significant(0.05)
        assert cmp.method == "wilcoxon"

    def test_all_ties(self):
        ens = fake_ensemble([40, 40, 40], [40, 40, 40])
        cmp = compare_variants(ens, VariantSpec("LL", "none"), VariantSpec("LL", "en+rob"))
        assert cmp.method == "all-ties"
        assert cmp.p_value == 1.0
        assert not cmp.significant()

    def test_small_sample_uses_sign_test(self):
        ens = fake_ensemble([50, 52, 55], [30, 31, 33])
        cmp = compare_variants(ens, VariantSpec("LL", "none"), VariantSpec("LL", "en+rob"))
        assert cmp.method == "sign-test"
        assert cmp.n == 3

    def test_noise_is_not_significant(self):
        rng = np.random.default_rng(0)
        base = list(rng.integers(40, 60, size=12))
        noisy = [int(m + rng.integers(-2, 3)) for m in base]
        ens = fake_ensemble(base, noisy)
        cmp = compare_variants(ens, VariantSpec("LL", "none"), VariantSpec("LL", "en+rob"))
        assert cmp.p_value > 0.01

    def test_median_fields(self):
        ens = fake_ensemble([10, 20, 30], [5, 15, 25])
        cmp = compare_variants(ens, VariantSpec("LL", "none"), VariantSpec("LL", "en+rob"))
        assert cmp.median_a == 20 and cmp.median_b == 15
        assert cmp.mean_diff == pytest.approx(5.0)

    def test_str_contains_p_value(self):
        ens = fake_ensemble([10, 20, 30], [5, 15, 25])
        cmp = compare_variants(ens, VariantSpec("LL", "none"), VariantSpec("LL", "en+rob"))
        assert "p=" in str(cmp)


class TestRealEnsemble:
    def test_filtering_improvement_is_directional(self, tiny_system):
        # Not asserting significance at tiny scale, just that the paired
        # machinery runs on genuine ensemble output.
        from repro.experiments.runner import run_ensemble
        from tests.conftest import tiny_config

        specs = (VariantSpec("MECT", "none"), VariantSpec("MECT", "en+rob"))
        ens = run_ensemble(specs, tiny_config(), num_trials=3, base_seed=5)
        cmp = compare_variants(ens, *specs)
        assert isinstance(cmp, PairedComparison)
        assert cmp.n == 3
        assert 0.0 <= cmp.p_value <= 1.0
