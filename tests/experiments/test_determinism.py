"""The runner's bit-reproducibility promise, asserted.

``experiments/runner.py`` documents that results are deterministic
regardless of ``n_jobs``; these tests pin it down with full
``TrialResult`` equality (including NaN-aware per-task outcomes), and
check that attaching observability does not perturb results either —
the paired-seed A/B guarantee the obs layer is built on.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import VariantSpec, run_ensemble
from repro.obs.sinks import MetricsRegistry
from tests.conftest import micro_config

SPECS = (VariantSpec("LL", "en+rob"), VariantSpec("MECT", "none"))


def depth_snapshot(registry: MetricsRegistry) -> tuple:
    depth = registry.histograms["queue_depth"]
    return (depth.counts, depth.count)


@pytest.fixture(scope="module")
def serial_ensemble():
    return run_ensemble(
        SPECS, micro_config(seed=5), num_trials=3, base_seed=9, n_jobs=1,
        keep_outcomes=True,
    )


class TestParallelDeterminism:
    def test_n_jobs_2_bitwise_identical(self, serial_ensemble):
        parallel = run_ensemble(
            SPECS, micro_config(seed=5), num_trials=3, base_seed=9, n_jobs=2,
            keep_outcomes=True,
        )
        for spec in SPECS:
            serial_trials = serial_ensemble.results[spec]
            parallel_trials = parallel.results[spec]
            assert len(serial_trials) == len(parallel_trials)
            for a, b in zip(serial_trials, parallel_trials):
                # TrialResult equality covers every scalar plus the full
                # outcome tuples (TaskOutcome.__eq__ is NaN-aware).
                assert a == b

    def test_trial_order_preserved_under_parallelism(self, serial_ensemble):
        parallel = run_ensemble(
            SPECS, micro_config(seed=5), num_trials=3, base_seed=9, n_jobs=2,
            keep_outcomes=True,
        )
        for spec in SPECS:
            assert [r.seed for r in serial_ensemble.results[spec]] == [
                r.seed for r in parallel.results[spec]
            ]

    def test_metrics_collection_does_not_change_results(self, serial_ensemble):
        registry = MetricsRegistry()
        observed = run_ensemble(
            SPECS, micro_config(seed=5), num_trials=3, base_seed=9, n_jobs=1,
            keep_outcomes=True, metrics=registry,
        )
        for spec in SPECS:
            for a, b in zip(serial_ensemble.results[spec], observed.results[spec]):
                assert a == b
        assert registry.counter("trials_run") == 3 * len(SPECS)

    def test_metrics_totals_independent_of_n_jobs(self):
        totals = []
        for n_jobs in (1, 2):
            registry = MetricsRegistry()
            run_ensemble(
                SPECS, micro_config(seed=5), num_trials=3, base_seed=9,
                n_jobs=n_jobs, metrics=registry,
            )
            # ``executor.*`` counters (chunk dispatch bookkeeping) are
            # harness-operational: they describe *how* trials were
            # delivered to workers, so they only exist on the parallel
            # path.  Everything else — the simulation metrics — must be
            # identical across n_jobs.
            counters = {
                k: v for k, v in registry.counters.items()
                if not k.startswith("executor.")
            }
            if n_jobs > 1:
                assert registry.counter("executor.trials_dispatched") == 3
            totals.append((counters, depth_snapshot(registry)))
        assert totals[0] == totals[1]
