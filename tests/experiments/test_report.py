"""Tests for report rendering (repro.experiments.report)."""

from __future__ import annotations

import pytest

from repro.experiments.report import best_variant_table, figure_table, summary_table
from repro.experiments.executor import TrialFailure
from repro.experiments.runner import PartialEnsembleResult, run_ensemble
from repro.experiments.figures import full_grid_specs, figure_specs
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def grid_ensemble():
    return run_ensemble(full_grid_specs(), tiny_config(), num_trials=2, base_seed=3)


@pytest.fixture(scope="module")
def sq_ensemble():
    return run_ensemble(figure_specs("fig2"), tiny_config(), num_trials=2, base_seed=3)


class TestFigureTable:
    def test_contains_all_variants(self, sq_ensemble):
        text = figure_table(sq_ensemble, "SQ", num_tasks=60)
        for variant in ("none", "en", "rob", "en+rob"):
            assert variant in text

    def test_contains_paper_reference(self, sq_ensemble):
        text = figure_table(sq_ensemble, "SQ", num_tasks=60)
        assert "375.5" in text  # paper median for SQ/none

    def test_skips_missing_heuristic(self, sq_ensemble):
        text = figure_table(sq_ensemble, "LL", num_tasks=60)
        # Header only, no variant rows.
        assert "none" not in text.splitlines()[-1] or len(text.splitlines()) == 2


class TestBestVariantTable:
    def test_lists_every_heuristic(self, grid_ensemble):
        text = best_variant_table(grid_ensemble, num_tasks=60)
        for heuristic in ("SQ", "MECT", "LL", "Random"):
            assert heuristic in text

    def test_shows_gain_column(self, grid_ensemble):
        assert "vs none" in best_variant_table(grid_ensemble, num_tasks=60)


class TestSummaryTable:
    def test_structure(self, grid_ensemble):
        text = summary_table(grid_ensemble, num_tasks=60)
        assert "Filtering summary" in text
        assert "Random" in text

    def test_random_vs_best_line(self, grid_ensemble):
        text = summary_table(grid_ensemble, num_tasks=60)
        assert "filtered Random vs best filtered heuristic" in text


def _as_partial(ensemble, num_trials):
    """Reframe a complete ensemble as a partial one missing the tail trials."""
    return PartialEnsembleResult(
        specs=ensemble.specs,
        num_trials=num_trials,
        base_seed=ensemble.base_seed,
        results=ensemble.results,
        completed_trials=tuple(range(ensemble.num_trials)),
        failures=(
            TrialFailure(
                trial=ensemble.num_trials, attempts=3, fault="crash", detail="died"
            ),
        ),
    )


class TestPartialAnnotation:
    def test_figure_table_notes_missing_trials(self, sq_ensemble):
        text = figure_table(_as_partial(sq_ensemble, 3), "SQ", num_tasks=60)
        assert "NOTE: medians computed over 2/3 trials" in text
        assert "missing trials: 2" in text

    def test_best_variant_table_notes_missing_trials(self, grid_ensemble):
        text = best_variant_table(_as_partial(grid_ensemble, 3), num_tasks=60)
        assert "NOTE: medians computed over 2/3 trials" in text

    def test_summary_table_notes_missing_trials(self, grid_ensemble):
        text = summary_table(_as_partial(grid_ensemble, 3), num_tasks=60)
        assert "NOTE: medians computed over 2/3 trials" in text

    def test_complete_ensemble_has_no_note(self, sq_ensemble):
        assert "NOTE:" not in figure_table(sq_ensemble, "SQ", num_tasks=60)

    def test_figure_table_with_zero_completed_trials(self, sq_ensemble):
        empty = PartialEnsembleResult(
            specs=sq_ensemble.specs,
            num_trials=2,
            base_seed=sq_ensemble.base_seed,
            results={spec: () for spec in sq_ensemble.specs},
            completed_trials=(),
            failures=(),
        )
        text = figure_table(empty, "SQ", num_tasks=60)
        assert "(no completed trials)" in text
