"""Tests for report rendering (repro.experiments.report)."""

from __future__ import annotations

import pytest

from repro.experiments.report import best_variant_table, figure_table, summary_table
from repro.experiments.runner import run_ensemble
from repro.experiments.figures import full_grid_specs, figure_specs
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def grid_ensemble():
    return run_ensemble(full_grid_specs(), tiny_config(), num_trials=2, base_seed=3)


@pytest.fixture(scope="module")
def sq_ensemble():
    return run_ensemble(figure_specs("fig2"), tiny_config(), num_trials=2, base_seed=3)


class TestFigureTable:
    def test_contains_all_variants(self, sq_ensemble):
        text = figure_table(sq_ensemble, "SQ", num_tasks=60)
        for variant in ("none", "en", "rob", "en+rob"):
            assert variant in text

    def test_contains_paper_reference(self, sq_ensemble):
        text = figure_table(sq_ensemble, "SQ", num_tasks=60)
        assert "375.5" in text  # paper median for SQ/none

    def test_skips_missing_heuristic(self, sq_ensemble):
        text = figure_table(sq_ensemble, "LL", num_tasks=60)
        # Header only, no variant rows.
        assert "none" not in text.splitlines()[-1] or len(text.splitlines()) == 2


class TestBestVariantTable:
    def test_lists_every_heuristic(self, grid_ensemble):
        text = best_variant_table(grid_ensemble, num_tasks=60)
        for heuristic in ("SQ", "MECT", "LL", "Random"):
            assert heuristic in text

    def test_shows_gain_column(self, grid_ensemble):
        assert "vs none" in best_variant_table(grid_ensemble, num_tasks=60)


class TestSummaryTable:
    def test_structure(self, grid_ensemble):
        text = summary_table(grid_ensemble, num_tasks=60)
        assert "Filtering summary" in text
        assert "Random" in text

    def test_random_vs_best_line(self, grid_ensemble):
        text = summary_table(grid_ensemble, num_tasks=60)
        assert "filtered Random vs best filtered heuristic" in text
