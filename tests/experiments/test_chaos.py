"""Chaos integration tests: recovery must be bitwise invisible.

The acceptance bar for the resilience layer: an ensemble that survives
injected crashes, hangs, and corrupt results — checkpointing along the
way and resuming afterwards — produces **manifest trial digests bitwise
identical** to the fault-free serial run.  Supervision may change *when*
trials run, never *what* they compute.
"""

from __future__ import annotations

import pytest

from repro.experiments.chaos import FaultPlan
from repro.experiments.runner import (
    PartialEnsembleResult,
    VariantSpec,
    run_ensemble,
)
from repro.obs.events import CheckpointWritten, TrialQuarantined, TrialRetried
from repro.obs.manifest import build_manifest
from repro.obs.sinks import MetricsRegistry, RingBufferSink
from tests.conftest import micro_config

SPECS = (VariantSpec("LL", "en+rob"), VariantSpec("MECT", "none"))
TRIALS = 3
BASE_SEED = 9


@pytest.fixture(scope="module")
def clean_manifest():
    """Fault-free serial ground truth for digest comparisons."""
    config = micro_config(seed=5)
    ensemble = run_ensemble(SPECS, config, TRIALS, BASE_SEED)
    return build_manifest(ensemble, config)


class TestChaosRecovery:
    def test_recovered_run_is_bitwise_identical(self, clean_manifest, tmp_path):
        """ISSUE acceptance: crash + hang + corrupt, checkpointed, resumed."""
        config = micro_config(seed=5)
        plan = FaultPlan.of((0, 1, "crash"), (1, 1, "hang"), (2, 1, "corrupt"))
        registry = MetricsRegistry()
        ring = RingBufferSink()
        shard = tmp_path / "chaos.jsonl"

        chaotic = run_ensemble(
            SPECS,
            config,
            TRIALS,
            BASE_SEED,
            checkpoint=shard,
            trial_timeout=5.0,
            backoff_base=0.0,
            fault_plan=plan,
            metrics=registry,
            sinks=(ring,),
        )

        assert not isinstance(chaotic, PartialEnsembleResult)
        assert (
            build_manifest(chaotic, config).trial_digests
            == clean_manifest.trial_digests
        )
        # Every injected fault was seen and recovered by a retry.
        assert registry.counter("executor.trials_retried") == 3
        assert registry.counter("executor.trials_quarantined") == 0
        assert registry.counter("executor.faults.crash") == 1
        assert registry.counter("executor.faults.timeout") == 1
        assert registry.counter("executor.faults.corrupt") == 1
        retried = [e for e in ring if isinstance(e, TrialRetried)]
        assert sorted((e.trial, e.fault) for e in retried) == [
            (0, "crash"),
            (1, "timeout"),
            (2, "corrupt"),
        ]
        checkpoints = [e for e in ring if isinstance(e, CheckpointWritten)]
        assert len(checkpoints) == TRIALS

        # Resume from the shard: nothing re-runs, digests still identical.
        resumed_metrics = MetricsRegistry()
        resumed = run_ensemble(
            SPECS,
            config,
            TRIALS,
            BASE_SEED,
            checkpoint=shard,
            resume=True,
            metrics=resumed_metrics,
        )
        assert (
            build_manifest(resumed, config).trial_digests
            == clean_manifest.trial_digests
        )
        assert resumed_metrics.counter("executor.trials_resumed") == TRIALS
        assert resumed_metrics.counter("executor.checkpoints_written") == 0

    def test_parallel_chaos_matches_serial(self, clean_manifest):
        config = micro_config(seed=5)
        plan = FaultPlan.of((0, 1, "error"), (2, 1, "crash"))
        chaotic = run_ensemble(
            SPECS,
            config,
            TRIALS,
            BASE_SEED,
            n_jobs=2,
            backoff_base=0.0,
            fault_plan=plan,
        )
        assert (
            build_manifest(chaotic, config).trial_digests
            == clean_manifest.trial_digests
        )

    def test_retry_order_does_not_leak_into_results(self, clean_manifest):
        # Fault trial 1 twice: it finishes last, yet fan-in stays sorted.
        config = micro_config(seed=5)
        plan = FaultPlan.of((1, 1, "error"), (1, 2, "error"))
        chaotic = run_ensemble(
            SPECS, config, TRIALS, BASE_SEED, backoff_base=0.0, fault_plan=plan
        )
        assert (
            build_manifest(chaotic, config).trial_digests
            == clean_manifest.trial_digests
        )


class TestQuarantine:
    def test_poison_trial_yields_partial_result(self):
        config = micro_config(seed=5)
        # Trial 1 fails every allowed attempt (max_retries=2 -> 3 attempts).
        plan = FaultPlan.of((1, 1, "error"), (1, 2, "error"), (1, 3, "error"))
        registry = MetricsRegistry()
        ring = RingBufferSink()
        result = run_ensemble(
            SPECS,
            config,
            TRIALS,
            BASE_SEED,
            backoff_base=0.0,
            fault_plan=plan,
            metrics=registry,
            sinks=(ring,),
        )
        assert isinstance(result, PartialEnsembleResult)
        assert not result.is_complete()
        assert result.completed_trials == (0, 2)
        assert result.missing_trials == (1,)
        assert result.quarantined_trials == (1,)
        assert result.num_trials == TRIALS
        failure = result.failures[0]
        assert failure.trial == 1
        assert failure.attempts == 3
        assert failure.fault == "error"
        # Medians still computable over what completed.
        for spec in SPECS:
            assert result.misses(spec).shape == (2,)
        assert registry.counter("executor.trials_retried") == 2
        assert registry.counter("executor.trials_quarantined") == 1
        quarantined = [e for e in ring if isinstance(e, TrialQuarantined)]
        assert [(e.trial, e.attempts) for e in quarantined] == [(1, 3)]

    def test_hang_plan_requires_timeout(self):
        config = micro_config(seed=5)
        with pytest.raises(ValueError, match="trial_timeout"):
            run_ensemble(
                SPECS,
                config,
                TRIALS,
                BASE_SEED,
                fault_plan=FaultPlan.of((0, 1, "hang")),
            )

    def test_resume_requires_checkpoint(self):
        config = micro_config(seed=5)
        with pytest.raises(ValueError, match="checkpoint"):
            run_ensemble(SPECS, config, TRIALS, BASE_SEED, resume=True)


class TestResumeAfterQuarantine:
    def test_second_run_completes_the_quarantined_trial(self, clean_manifest, tmp_path):
        config = micro_config(seed=5)
        shard = tmp_path / "partial.jsonl"
        plan = FaultPlan.of((1, 1, "error"), (1, 2, "error"), (1, 3, "error"))
        first = run_ensemble(
            SPECS,
            config,
            TRIALS,
            BASE_SEED,
            checkpoint=shard,
            backoff_base=0.0,
            fault_plan=plan,
        )
        assert isinstance(first, PartialEnsembleResult)
        assert first.missing_trials == (1,)

        # Re-run with resume and no faults: only trial 1 executes.
        registry = MetricsRegistry()
        second = run_ensemble(
            SPECS,
            config,
            TRIALS,
            BASE_SEED,
            checkpoint=shard,
            resume=True,
            metrics=registry,
        )
        assert not isinstance(second, PartialEnsembleResult)
        assert registry.counter("executor.trials_resumed") == 2
        assert registry.counter("executor.checkpoints_written") == 1
        assert (
            build_manifest(second, config).trial_digests
            == clean_manifest.trial_digests
        )
