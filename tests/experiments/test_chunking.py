"""Regression tests for chunked-dispatch auto-sizing.

BENCH_ensemble.json once recorded ``chunking.speedup`` *below* 1.0: the
auto-sizer floor-divided the trial count by four waves per worker, which
drove bench-scale ensembles (16 trials on 4 jobs) to chunk size 1 — one
IPC round trip per trial, i.e. strictly more overhead than unchunked
dispatch.  These tests pin the fixed sizing (two waves, ceiling
division) and that auto-chunking never dispatches more IPC rounds than
``chunk_size=1`` would.
"""

from __future__ import annotations

import pytest

from repro.experiments.executor import (
    _CHUNK_CAP,
    _auto_chunk_size,
    run_supervised,
)
from repro.obs.sinks import MetricsRegistry


def _double(x: int) -> int:
    return 2 * x


class TestAutoChunkSize:
    def test_bench_shape_is_not_degenerate(self):
        # The regression: 16 trials on 4 jobs must NOT auto-size to 1.
        assert _auto_chunk_size(16, 4) > 1

    @pytest.mark.parametrize(
        "num_trials,n_jobs,expected",
        [
            (16, 4, 2),  # two waves of 2 per worker
            (10, 4, 2),  # ceil(10 / 8) = 2
            (4, 4, 1),  # fewer trials than wave slots: singles
            (100, 4, 13),  # ceil(100 / 8) = 13
            (1000, 8, _CHUNK_CAP),  # capped
            (1, 1, 1),
        ],
    )
    def test_exact_values(self, num_trials, n_jobs, expected):
        assert _auto_chunk_size(num_trials, n_jobs) == expected

    def test_always_at_least_one(self):
        for num_trials in (1, 2, 3, 7):
            for n_jobs in (1, 2, 8, 64):
                assert _auto_chunk_size(num_trials, n_jobs) >= 1

    def test_never_exceeds_cap(self):
        assert _auto_chunk_size(10_000, 1) == _CHUNK_CAP

    def test_covers_all_trials_in_two_waves_per_worker(self):
        # Below the cap, chunk * (2 waves) * workers must cover the queue
        # (ceiling division cannot strand a remainder in a third wave).
        for num_trials in range(1, 65):
            for n_jobs in (1, 2, 4):
                chunk = _auto_chunk_size(num_trials, n_jobs)
                if chunk < _CHUNK_CAP:
                    assert chunk * 2 * n_jobs >= num_trials


class TestChunkedDispatch:
    def test_auto_dispatches_fewer_ipc_rounds_than_singles(self):
        payloads = {t: t for t in range(16)}
        auto = MetricsRegistry()
        run_supervised(_double, payloads, base_seed=0, n_jobs=2, metrics=auto)
        singles = MetricsRegistry()
        run_supervised(
            _double, payloads, base_seed=0, n_jobs=2, metrics=singles, chunk_size=1
        )
        assert (
            auto.counter("executor.chunks_dispatched")
            < singles.counter("executor.chunks_dispatched")
        )

    def test_auto_and_singles_agree_on_results(self):
        payloads = {t: t for t in range(16)}
        auto_done, auto_failures = run_supervised(
            _double, payloads, base_seed=0, n_jobs=2
        )
        one_done, one_failures = run_supervised(
            _double, payloads, base_seed=0, n_jobs=2, chunk_size=1
        )
        assert auto_failures == one_failures == []
        assert auto_done == one_done == {t: 2 * t for t in range(16)}

    def test_all_trials_dispatched_exactly_once_without_faults(self):
        payloads = {t: t for t in range(16)}
        metrics = MetricsRegistry()
        run_supervised(_double, payloads, base_seed=0, n_jobs=4, metrics=metrics)
        assert metrics.counter("executor.trials_dispatched") == 16
