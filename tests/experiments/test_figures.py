"""Tests for figure definitions (repro.experiments.figures)."""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    FIGURES,
    PAPER_MEDIANS,
    figure_specs,
    full_grid_specs,
    run_figure,
)
from repro.experiments.runner import VariantSpec
from tests.conftest import tiny_config


class TestDefinitions:
    def test_all_paper_figures_present(self):
        assert set(FIGURES) == {"fig2", "fig3", "fig4", "fig5", "fig6"}

    def test_figure_heuristics(self):
        assert FIGURES["fig2"] == ("SQ",)
        assert FIGURES["fig3"] == ("MECT",)
        assert FIGURES["fig4"] == ("LL",)
        assert FIGURES["fig5"] == ("Random",)
        assert set(FIGURES["fig6"]) == {"SQ", "MECT", "LL", "Random"}

    def test_figure_specs_cover_variants(self):
        specs = figure_specs("fig2")
        assert len(specs) == 4
        assert {s.variant for s in specs} == {"none", "en", "rob", "en+rob"}

    def test_fig6_needs_full_grid(self):
        assert len(figure_specs("fig6")) == 16

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            figure_specs("fig9")

    def test_full_grid(self):
        specs = full_grid_specs()
        assert len(specs) == 16
        assert len(set(specs)) == 16

    def test_paper_medians_reference_values(self):
        # The headline numbers from Section VII.
        assert PAPER_MEDIANS[("Random", "none")] == 561.5
        assert PAPER_MEDIANS[("LL", "en+rob")] == 226.0
        assert PAPER_MEDIANS[("SQ", "none")] == 375.5
        assert PAPER_MEDIANS[("MECT", "none")] == 370.0

    def test_paper_medians_cover_grid(self):
        assert set(PAPER_MEDIANS) == {
            (h, v)
            for h in ("SQ", "MECT", "LL", "Random")
            for v in ("none", "en", "rob", "en+rob")
        }


class TestRunFigure:
    def test_run_small_figure(self):
        ensemble = run_figure("fig2", tiny_config(), num_trials=2, base_seed=1)
        assert ensemble.num_trials == 2
        assert VariantSpec("SQ", "none") in ensemble.results
        assert len(ensemble.specs) == 4
