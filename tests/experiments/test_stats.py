"""Tests for box statistics (repro.experiments.stats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.stats import box_stats, completeness_note, median_improvement


class TestBoxStats:
    def test_five_numbers(self):
        s = box_stats([1, 2, 3, 4, 5])
        assert s.minimum == 1 and s.maximum == 5
        assert s.median == 3
        assert s.q1 == 2 and s.q3 == 4
        assert s.n == 5

    def test_iqr(self):
        assert box_stats([1, 2, 3, 4, 5]).iqr == pytest.approx(2.0)

    def test_whiskers_without_outliers(self):
        s = box_stats([1, 2, 3, 4, 5])
        assert s.whisker_low == 1 and s.whisker_high == 5
        assert s.outliers == ()

    def test_outlier_detection(self):
        data = [10, 11, 12, 13, 14, 100]
        s = box_stats(data)
        assert 100 in s.outliers
        assert s.whisker_high < 100

    def test_low_outlier(self):
        data = [-50, 10, 11, 12, 13, 14]
        s = box_stats(data)
        assert -50 in s.outliers
        assert s.whisker_low == 10

    def test_single_value(self):
        s = box_stats([7.0])
        assert s.minimum == s.median == s.maximum == 7.0
        assert s.outliers == ()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            box_stats([])

    def test_matches_numpy_percentiles(self):
        rng = np.random.default_rng(0)
        data = rng.normal(100, 20, size=200)
        s = box_stats(data)
        q1, med, q3 = np.percentile(data, [25, 50, 75])
        assert s.q1 == pytest.approx(q1)
        assert s.median == pytest.approx(med)
        assert s.q3 == pytest.approx(q3)

    def test_str_mentions_median(self):
        assert "med=" in str(box_stats([1, 2, 3]))


class TestMedianImprovement:
    def test_positive_improvement(self):
        # Fewer misses is better: 400 -> 300 is a 25% improvement.
        assert median_improvement([400], [300]) == pytest.approx(0.25)

    def test_negative_improvement(self):
        assert median_improvement([400], [500]) == pytest.approx(-0.25)

    def test_zero_baseline(self):
        assert median_improvement([0], [5]) == 0.0

    def test_uses_medians(self):
        base = [100, 400, 700]  # median 400
        imp = [200, 300, 1000]  # median 300
        assert median_improvement(base, imp) == pytest.approx(0.25)

    def test_paper_figures(self):
        # Paper: LL improves 15.5% (381 -> ~322 implied by en+rob text is
        # actually 226 vs unfiltered MECT; here verify the quoted
        # unfiltered->filtered drops).
        assert median_improvement([561.5], [266.0]) == pytest.approx(0.526, abs=0.01)
        assert median_improvement([375.5], [234.5]) == pytest.approx(0.3755, abs=0.01)


class TestCompletenessNote:
    def test_complete_sample_has_no_note(self):
        assert completeness_note(3, 3) is None
        assert completeness_note(5, 3) is None

    def test_incomplete_sample_counts(self):
        note = completeness_note(2, 3)
        assert note == "NOTE: medians computed over 2/3 trials"

    def test_missing_trials_listed(self):
        note = completeness_note(2, 4, missing=(1, 3))
        assert note is not None
        assert "2/4" in note
        assert "missing trials: 1, 3" in note
