"""Tests for the supervised execution layer (repro.experiments.executor)."""

from __future__ import annotations

import json
import time

import pytest

from repro.experiments.chaos import FaultPlan, parse_fault_plan
from repro.experiments.executor import (
    CHECKPOINT_FORMAT,
    CheckpointWriter,
    RetryPolicy,
    TrialFailure,
    load_checkpoint,
    run_supervised,
)
from repro.experiments.runner import TrialPlan, VariantSpec
from repro.obs.events import TrialQuarantined, TrialRetried
from repro.obs.manifest import config_digest
from repro.obs.sinks import MetricsRegistry
from tests.conftest import micro_config


# Top-level so worker processes can resolve them by reference.
def _square(x: int) -> int:
    return x * x


def _sleep_forever(x: float) -> float:
    time.sleep(x)
    return x


def _fail(x: int) -> int:
    raise RuntimeError(f"always fails ({x})")


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(backoff_base=0.5)
        assert policy.delay(9, 3, 1) == policy.delay(9, 3, 1)

    def test_delay_varies_with_attempt_and_trial(self):
        policy = RetryPolicy(backoff_base=0.5)
        delays = {policy.delay(9, t, a) for t in (0, 1) for a in (1, 2)}
        assert len(delays) == 4

    def test_exponential_shape_with_jitter_bounds(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_cap=100.0)
        for attempt in (1, 2, 3):
            raw = 0.5 * 2.0 ** (attempt - 1)
            delay = policy.delay(0, 0, attempt)
            assert 0.5 * raw <= delay < raw

    def test_cap_bounds_delay(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=2.0)
        assert policy.delay(0, 0, 10) <= 2.0

    def test_zero_base_means_no_backoff(self):
        assert RetryPolicy(backoff_base=0.0).delay(0, 0, 1) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_retries": -1}, {"backoff_base": -0.1}, {"backoff_cap": -1.0}],
    )
    def test_rejects_negative_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestFaultPlan:
    def test_fault_for(self):
        plan = FaultPlan.of((0, 1, "crash"), (2, 2, "hang"))
        assert plan.fault_for(0, 1) == "crash"
        assert plan.fault_for(0, 2) is None
        assert plan.fault_for(2, 2) == "hang"

    def test_needs_timeout_only_for_hangs(self):
        assert FaultPlan.of((0, 1, "hang")).needs_timeout()
        assert not FaultPlan.of((0, 1, "crash")).needs_timeout()

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.of((0, 1, "gremlin"))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan.of((0, 1, "crash"), (0, 1, "hang"))

    def test_rejects_zero_attempt(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan.of((0, 0, "crash"))

    def test_parse_round_trip(self):
        plan = parse_fault_plan("0:1:crash, 2:1:hang")
        assert plan == FaultPlan.of((0, 1, "crash"), (2, 1, "hang"))

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="trial:attempt:kind"):
            parse_fault_plan("0:crash")


class TestRunSupervised:
    def test_runs_every_payload(self):
        done, failures = run_supervised(
            _square, {i: i for i in range(5)}, base_seed=0, n_jobs=3
        )
        assert failures == []
        assert done == {i: i * i for i in range(5)}

    def test_rejects_nonpositive_n_jobs(self):
        with pytest.raises(ValueError, match="n_jobs"):
            run_supervised(_square, {0: 1}, base_seed=0, n_jobs=0)

    def test_empty_payloads(self):
        assert run_supervised(_square, {}, base_seed=0, n_jobs=2) == ({}, [])

    def test_timeout_quarantines_unkillable_hang(self):
        registry = MetricsRegistry()
        events = []
        done, failures = run_supervised(
            _sleep_forever,
            {0: 30.0},
            base_seed=0,
            n_jobs=1,
            trial_timeout=0.3,
            retry=RetryPolicy(max_retries=1, backoff_base=0.0),
            on_event=events.append,
            metrics=registry,
        )
        assert done == {}
        assert len(failures) == 1
        assert failures[0].fault == "timeout"
        assert failures[0].attempts == 2
        assert registry.counter("executor.trials_retried") == 1
        assert registry.counter("executor.trials_quarantined") == 1
        assert registry.counter("executor.faults.timeout") == 2
        kinds = [type(e) for e in events]
        assert kinds == [TrialRetried, TrialQuarantined]

    def test_persistent_error_quarantines_without_killing_others(self):
        done, failures = run_supervised(
            _fail,
            {0: 1, 1: 2},
            base_seed=0,
            n_jobs=2,
            retry=RetryPolicy(max_retries=1, backoff_base=0.0),
        )
        assert done == {}
        assert {f.trial for f in failures} == {0, 1}
        assert all("always fails" in f.detail for f in failures)

    def test_on_result_fires_per_completion(self):
        seen: dict[int, int] = {}
        run_supervised(
            _square, {i: i for i in range(4)}, base_seed=0, n_jobs=2,
            on_result=lambda t, v: seen.__setitem__(t, v),
        )
        assert seen == {i: i * i for i in range(4)}


@pytest.fixture()
def shard(tmp_path):
    """A two-trial checkpoint shard plus its key, built from real trials."""
    config = micro_config(seed=5)
    digest = config_digest(config)
    specs = (VariantSpec("LL", "none"),)
    labels = [s.label for s in specs]
    from repro import build_trial_system
    from repro import rng as rng_mod

    path = tmp_path / "shard.jsonl"
    writer = CheckpointWriter(
        path, config_digest=digest, base_seed=9, spec_labels=labels
    )
    results = {}
    for trial in (0, 1):
        seed = rng_mod.spawn_trial_seed(9, trial)
        system = build_trial_system(config.with_seed(seed))
        results[trial] = [TrialPlan(system=system, spec=specs[0]).run()]
        writer.write(trial, results[trial], None)
    writer.close()
    return {
        "path": path,
        "digest": digest,
        "labels": labels,
        "results": results,
    }


def _load(shard, **overrides):
    kwargs = dict(
        config_digest=shard["digest"],
        base_seed=9,
        spec_labels=shard["labels"],
        num_trials=5,
    )
    kwargs.update(overrides)
    return load_checkpoint(shard["path"], **kwargs)


class TestCheckpointRoundTrip:
    def test_restores_written_trials(self, shard):
        restored, notes = _load(shard)
        assert notes == []
        assert set(restored) == {0, 1}
        for trial in (0, 1):
            results, metrics_dict = restored[trial]
            assert results == shard["results"][trial]
            assert metrics_dict is None

    def test_records_are_format_tagged(self, shard):
        first = json.loads(shard["path"].read_text().splitlines()[0])
        assert first["format"] == CHECKPOINT_FORMAT
        assert first["config_digest"] == shard["digest"]

    def test_missing_shard_restores_nothing(self, shard, tmp_path):
        restored, notes = load_checkpoint(
            tmp_path / "absent.jsonl",
            config_digest=shard["digest"],
            base_seed=9,
            spec_labels=shard["labels"],
            num_trials=5,
        )
        assert restored == {} and notes == []

    def test_later_duplicate_record_wins(self, shard):
        lines = shard["path"].read_text().splitlines()
        shard["path"].write_text("\n".join(lines + [lines[0]]) + "\n")
        restored, notes = _load(shard)
        assert set(restored) == {0, 1}

    def test_foreign_run_records_ignored_with_note(self, shard):
        with pytest.warns(RuntimeWarning, match="different run"):
            restored, notes = _load(shard, config_digest="0" * 64)
        assert restored == {}
        assert len(notes) == 2

    def test_wrong_spec_grid_ignored(self, shard):
        with pytest.warns(RuntimeWarning, match="different run"):
            restored, _ = _load(shard, spec_labels=["LL/en+rob"])
        assert restored == {}

    def test_out_of_range_trial_ignored(self, shard):
        with pytest.warns(RuntimeWarning, match="out of range"):
            restored, _ = _load(shard, num_trials=1)
        assert set(restored) == {0}


class TestCheckpointCorruption:
    def test_truncated_final_line_dropped_with_warning(self, shard):
        # Simulate a process killed mid-write: final line cut in half.
        text = shard["path"].read_text()
        lines = text.splitlines()
        shard["path"].write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        with pytest.warns(RuntimeWarning, match="truncated"):
            restored, notes = _load(shard)
        assert set(restored) == {0}
        assert any("re-run" in note for note in notes)

    def test_tampered_result_fails_digest_check(self, shard):
        lines = shard["path"].read_text().splitlines()
        record = json.loads(lines[1])
        record["results"][0]["total_energy"] += 1.0
        lines[1] = json.dumps(record, sort_keys=True)
        shard["path"].write_text("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match="digest mismatch"):
            restored, _ = _load(shard)
        assert set(restored) == {0}

    def test_non_checkpoint_lines_skipped(self, shard):
        shard["path"].write_text(
            json.dumps({"format": "something/else"}) + "\n" + shard["path"].read_text()
        )
        with pytest.warns(RuntimeWarning, match="not a repro.checkpoint/1"):
            restored, _ = _load(shard)
        assert set(restored) == {0, 1}


class TestTrialFailure:
    def test_carries_post_mortem(self):
        failure = TrialFailure(trial=3, attempts=4, fault="crash", detail="boom")
        assert failure.trial == 3
        assert failure.fault == "crash"
