"""Tests for calibration diagnostics (repro.experiments.calibrate)."""

from __future__ import annotations

import pytest

from repro.experiments.calibrate import calibration_summary, subscription_report
from tests.conftest import tiny_config


class TestSubscriptionReport:
    def test_paper_premises_hold(self, small_system):
        rep = subscription_report(small_system)
        assert rep.is_oversubscribed_in_bursts()
        assert rep.is_undersubscribed_in_lull()

    def test_utilization_ratios_match_config(self, small_system):
        rep = subscription_report(small_system)
        cfg = small_system.config.workload
        assert rep.fast_utilization == pytest.approx(cfg.fast_ratio)
        assert rep.slow_utilization == pytest.approx(cfg.slow_ratio)

    def test_budget_forces_tradeoff(self, small_system):
        # The paper's budget sits inside the spending envelope.
        rep = subscription_report(small_system)
        assert rep.budget_forces_tradeoff()

    def test_energy_envelope_ordering(self, small_system):
        rep = subscription_report(small_system)
        assert 0 < rep.min_energy_per_task < rep.max_energy_per_task

    def test_budget_per_task(self, small_system):
        rep = subscription_report(small_system)
        assert rep.budget_per_task == pytest.approx(
            small_system.budget / small_system.num_tasks
        )

    def test_service_rate(self, small_system):
        rep = subscription_report(small_system)
        assert rep.service_rate == pytest.approx(
            small_system.cluster.num_cores / small_system.t_avg
        )


class TestCalibrationSummary:
    def test_renders(self):
        text = calibration_summary(tiny_config())
        assert "cores=" in text
        assert "budget forces trade-off" in text
