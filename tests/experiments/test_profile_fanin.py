"""Tests for span/timeline collection through the ensemble runner.

The contract under test: profiling is an *observer*.  Span streams and
timelines fan in from worker processes deterministically (same streams,
same counts, any ``n_jobs``), and collecting them changes nothing about
the run itself — results and manifest digests are bitwise identical with
profiling on or off.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import VariantSpec, run_ensemble
from repro.obs.manifest import build_manifest
from repro.obs.sinks import MetricsRegistry
from repro.obs.spans import SpanProfile
from repro.obs.timeline import TimelineSet
from tests.conftest import micro_config

SPECS = (VariantSpec("LL", "en+rob"), VariantSpec("SQ", "none"))
TRIALS = 3
DT = 50.0


def run(n_jobs: int, *, profiled: bool):
    profile = SpanProfile() if profiled else None
    timeline = TimelineSet(DT) if profiled else None
    metrics = MetricsRegistry() if profiled else None
    ensemble = run_ensemble(
        SPECS,
        micro_config(),
        num_trials=TRIALS,
        base_seed=11,
        n_jobs=n_jobs,
        metrics=metrics,
        profile=profile,
        timeline=timeline,
    )
    return ensemble, profile, timeline, metrics


@pytest.fixture(scope="module")
def serial():
    return run(1, profiled=True)


@pytest.fixture(scope="module")
def parallel():
    return run(2, profiled=True)


class TestProfilingIsInert:
    def test_results_and_digests_identical_profiled_or_not(self, serial):
        plain, _, _, _ = run(1, profiled=False)
        profiled = serial[0]
        assert profiled.results == plain.results
        config = micro_config()
        assert (
            build_manifest(profiled, config).to_dict()
            == build_manifest(plain, config).to_dict()
        )


class TestSpanFanIn:
    def test_expected_streams(self, serial):
        _, profile, _, _ = serial
        # Stream 0 is the supervisor; one stream per trial after it.
        assert profile.labels == {
            0: "supervisor",
            1: "trial-0",
            2: "trial-1",
            3: "trial-2",
        }

    def test_span_counts_deterministic_across_n_jobs(self, serial, parallel):
        assert serial[1].span_counts() == parallel[1].span_counts()

    def test_merge_order_deterministic_across_n_jobs(self, serial, parallel):
        key = [(r.stream, r.seq, r.name) for r in serial[1].sorted_records()]
        assert key == [(r.stream, r.seq, r.name) for r in parallel[1].sorted_records()]

    def test_expected_span_names_present(self, serial):
        counts = serial[1].span_counts()
        assert counts["trial.build_system"] == TRIALS
        assert counts["trial.run.LL/en+rob"] == TRIALS
        assert counts["trial.run.SQ/none"] == TRIALS
        assert counts["executor.trial"] == TRIALS
        for name in ("engine.arrival", "engine.completion", "filters.chain",
                     "heuristic.LL", "heuristic.SQ"):
            assert counts[name] > 0


class TestTimelineFanIn:
    def test_one_stream_per_trial_and_spec(self, serial):
        _, _, timeline, _ = serial
        labels = [(s["stream"], s["label"]) for s in timeline.sorted_streams()]
        # Timeline streams share the span-stream numbering: id trial + 1,
        # because stream 0 belongs to the parent supervisor.
        assert labels == [
            (trial + 1, f"trial{trial}:{spec.label}")
            for trial in range(TRIALS)
            for spec in SPECS
        ]

    def test_timeline_streams_correlate_with_span_streams(self, serial):
        # Regression: timelines used to number streams from 0 while span
        # streams started at 1 (stream 0 = supervisor), so a trial's
        # spans and timelines landed on *different* ids and could not be
        # joined in a trace viewer.  Both recorders now stamp
        # ``trial_index + 1``.
        _, profile, timeline, _ = serial
        for stream in timeline.sorted_streams():
            trial = int(stream["label"].split(":")[0].removeprefix("trial"))
            assert stream["stream"] == trial + 1
            assert profile.labels[stream["stream"]] == f"trial-{trial}"

    def test_timelines_identical_across_n_jobs(self, serial, parallel):
        assert serial[2].to_dict() == parallel[2].to_dict()


class TestMetricsFanIn:
    def test_counters_identical_across_n_jobs(self, serial, parallel):
        # Counters (incl. the stoch op counters) are seed-deterministic;
        # latency histograms are wall-clock and deliberately excluded.
        serial_counters = serial[3].to_dict()["counters"]
        parallel_counters = {
            k: v
            for k, v in parallel[3].to_dict()["counters"].items()
            if not k.startswith("executor.")
        }
        assert {
            k: v for k, v in serial_counters.items() if not k.startswith("executor.")
        } == parallel_counters
        assert serial_counters["stoch.ops.convolve"] > 0
        assert serial_counters["stoch.ops.truncate_below"] > 0
