"""Tests for the ensemble runner (repro.experiments.runner)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import TrialPlan, VariantSpec, run_ensemble
from tests.conftest import tiny_config


SPECS = (
    VariantSpec("MECT", "none"),
    VariantSpec("MECT", "en+rob"),
    VariantSpec("Random", "none"),
)


@pytest.fixture(scope="module")
def ensemble():
    return run_ensemble(SPECS, tiny_config(), num_trials=3, base_seed=42)


class TestTrialPlan:
    def test_strips_outcomes_by_default(self, tiny_system):
        result = TrialPlan(system=tiny_system, spec=VariantSpec("SQ", "none")).run()
        assert result.outcomes == ()

    def test_keeps_outcomes_on_request(self, tiny_system):
        result = TrialPlan(
            system=tiny_system, spec=VariantSpec("SQ", "none"), keep_outcomes=True
        ).run()
        assert len(result.outcomes) == tiny_system.num_tasks

    def test_labels_propagate(self, tiny_system):
        result = TrialPlan(system=tiny_system, spec=VariantSpec("LL", "rob")).run()
        assert result.heuristic == "LL"
        assert result.variant == "rob"

    def test_random_heuristic_reproducible(self, tiny_system):
        spec = VariantSpec("Random", "none")
        a = TrialPlan(system=tiny_system, spec=spec).run()
        b = TrialPlan(system=tiny_system, spec=spec).run()
        assert a.missed == b.missed


class TestRunEnsemble:
    def test_structure(self, ensemble):
        assert ensemble.num_trials == 3
        assert set(ensemble.results) == set(SPECS)
        for spec in SPECS:
            assert len(ensemble.results[spec]) == 3

    def test_misses_array(self, ensemble):
        misses = ensemble.misses(SPECS[0])
        assert misses.shape == (3,)
        assert misses.dtype == np.int64

    def test_paired_seeds_across_specs(self, ensemble):
        # Within a trial, every spec saw the same seed.
        for i in range(3):
            seeds = {ensemble.results[spec][i].seed for spec in SPECS}
            assert len(seeds) == 1

    def test_trials_have_distinct_seeds(self, ensemble):
        seeds = [r.seed for r in ensemble.results[SPECS[0]]]
        assert len(set(seeds)) == 3

    def test_deterministic_rerun(self, ensemble):
        again = run_ensemble(SPECS, tiny_config(), num_trials=3, base_seed=42)
        for spec in SPECS:
            assert np.array_equal(ensemble.misses(spec), again.misses(spec))

    def test_base_seed_changes_results(self, ensemble):
        other = run_ensemble(SPECS, tiny_config(), num_trials=3, base_seed=43)
        different = any(
            not np.array_equal(ensemble.misses(spec), other.misses(spec))
            for spec in SPECS
        )
        assert different

    def test_median_and_by_heuristic(self, ensemble):
        med = ensemble.median_misses(SPECS[0])
        assert med == float(np.median(ensemble.misses(SPECS[0])))
        cols = ensemble.by_heuristic("MECT")
        assert set(cols) == {"none", "en+rob"}

    def test_best_variant(self, ensemble):
        best = ensemble.best_variant("MECT")
        assert best.heuristic == "MECT"
        assert ensemble.median_misses(best) == min(
            ensemble.median_misses(VariantSpec("MECT", v)) for v in ("none", "en+rob")
        )

    def test_best_variant_unknown_heuristic(self, ensemble):
        with pytest.raises(KeyError):
            ensemble.best_variant("OLB")

    def test_rejects_empty_specs(self):
        with pytest.raises(ValueError):
            run_ensemble((), tiny_config(), 1)

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            run_ensemble(SPECS, tiny_config(), 0)

    @pytest.mark.parametrize("n_jobs", [0, -1, -8])
    def test_rejects_non_positive_n_jobs(self, n_jobs):
        with pytest.raises(ValueError, match="n_jobs"):
            run_ensemble(SPECS, tiny_config(), num_trials=1, n_jobs=n_jobs)

    def test_spec_label(self):
        assert VariantSpec("LL", "en+rob").label == "LL/en+rob"


class TestParallelFanIn:
    def test_keep_outcomes_with_parallel_workers(self, ensemble):
        # Outcomes must survive pickling through the worker pipes, land on
        # the right (spec, trial) cell, and fan in independent of n_jobs.
        parallel = run_ensemble(
            SPECS,
            tiny_config(),
            num_trials=3,
            base_seed=42,
            n_jobs=2,
            keep_outcomes=True,
        )
        for spec in SPECS:
            assert np.array_equal(ensemble.misses(spec), parallel.misses(spec))
            for trial, result in enumerate(parallel.results[spec]):
                assert len(result.outcomes) == result.num_tasks
                assert result.seed == ensemble.results[spec][trial].seed
        serial = run_ensemble(
            SPECS,
            tiny_config(),
            num_trials=3,
            base_seed=42,
            keep_outcomes=True,
        )
        for spec in SPECS:
            assert parallel.results[spec] == serial.results[spec]
