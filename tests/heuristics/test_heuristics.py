"""Behavioral tests for the four paper heuristics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.heuristics.base import CandidateSet, MappingContext
from repro.heuristics.lightest_load import LightestLoad
from repro.heuristics.mect import MinimumExpectedCompletionTime
from repro.heuristics.random_heuristic import RandomAssignment
from repro.heuristics.shortest_queue import ShortestQueue
from repro.heuristics.registry import HEURISTICS, build_heuristic
from repro.workload.task import Task


def cands() -> CandidateSet:
    # Two cores x three P-states.
    return CandidateSet(
        core_ids=np.repeat([0, 1], 3),
        pstates=np.tile([0, 1, 2], 2),
        queue_len=np.repeat([3, 1], 3),
        eet=np.array([10.0, 13.0, 17.0, 12.0, 15.0, 20.0]),
        eec=np.array([9.0, 6.0, 4.0, 10.0, 7.0, 5.0]),
        ect=np.array([40.0, 43.0, 47.0, 12.0, 15.0, 20.0]),
        prob_on_time=np.array([0.5, 0.45, 0.4, 0.99, 0.95, 0.7]),
    )


def ctx() -> MappingContext:
    return MappingContext(
        t_now=5.0,
        task=Task(0, 0, 5.0, 100.0),
        energy_estimate=500.0,
        tasks_left=7,
        avg_queue_depth=1.0,
    )


class TestShortestQueue:
    def test_picks_min_queue_then_min_eet(self):
        # Core 1 has the shorter queue; its fastest P-state has EET 12.
        assert ShortestQueue().select(cands(), ctx()) == 3

    def test_tie_break_on_eet(self):
        c = cands()
        c.queue_len[:] = 2  # all tied -> global min EET = index 0
        assert ShortestQueue().select(c, ctx()) == 0

    def test_respects_mask(self):
        c = cands()
        c.mask[3] = False
        assert ShortestQueue().select(c, ctx()) == 4

    def test_none_when_empty(self):
        c = cands()
        c.mask[:] = False
        assert ShortestQueue().select(c, ctx()) is None

    def test_unfiltered_prefers_p0_on_chosen_core(self):
        # The paper's observation: SQ's tie-break drives it to P0.
        choice = ShortestQueue().select(cands(), ctx())
        assert cands().pstates[choice] == 0


class TestMECT:
    def test_picks_min_ect(self):
        assert MinimumExpectedCompletionTime().select(cands(), ctx()) == 3

    def test_unfiltered_prefers_p0(self):
        # On any single core ECT grows with P-state index, so the global
        # argmin lands on a P0 candidate (the paper's energy complaint).
        choice = MinimumExpectedCompletionTime().select(cands(), ctx())
        assert cands().pstates[choice] == 0

    def test_respects_mask(self):
        c = cands()
        c.mask[[3, 4]] = False
        assert MinimumExpectedCompletionTime().select(c, ctx()) == 5

    def test_none_when_empty(self):
        c = cands()
        c.mask[:] = False
        assert MinimumExpectedCompletionTime().select(c, ctx()) is None


class TestLightestLoad:
    def test_minimizes_eec_times_inverse_robustness(self):
        c = cands()
        loads = c.eec * (1.0 - c.prob_on_time)
        assert LightestLoad().select(c, ctx()) == int(np.argmin(loads))

    def test_perfectly_robust_candidate_dominates(self):
        c = cands()
        c.prob_on_time[5] = 1.0  # load exactly 0
        assert LightestLoad().select(c, ctx()) == 5

    def test_respects_mask(self):
        c = cands()
        best = LightestLoad().select(c, ctx())
        c.mask[best] = False
        second = LightestLoad().select(c, ctx())
        assert second != best

    def test_none_when_empty(self):
        c = cands()
        c.mask[:] = False
        assert LightestLoad().select(c, ctx()) is None


class TestRandom:
    def test_uniform_over_feasible(self):
        rng = np.random.default_rng(0)
        h = RandomAssignment(rng)
        c = cands()
        c.mask[:3] = False
        picks = {h.select(c, ctx()) for _ in range(200)}
        assert picks == {3, 4, 5}

    def test_deterministic_under_seed(self):
        a = [RandomAssignment(np.random.default_rng(1)).select(cands(), ctx())]
        b = [RandomAssignment(np.random.default_rng(1)).select(cands(), ctx())]
        assert a == b

    def test_none_when_empty(self):
        c = cands()
        c.mask[:] = False
        assert RandomAssignment(np.random.default_rng(0)).select(c, ctx()) is None


class TestRegistry:
    def test_canonical_names(self):
        assert HEURISTICS == ("SQ", "MECT", "LL", "Random")

    def test_builds_each(self):
        rng = np.random.default_rng(0)
        assert build_heuristic("SQ").name == "SQ"
        assert build_heuristic("mect").name == "MECT"
        assert build_heuristic("Ll").name == "LL"
        assert build_heuristic("random", rng).name == "Random"

    def test_random_requires_rng(self):
        with pytest.raises(ValueError):
            build_heuristic("Random")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_heuristic("OLB")
