"""Tests for heuristic machinery (repro.heuristics.base)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.heuristics.base import (
    Assignment,
    CandidateSet,
    MappingContext,
    argmin_lexicographic,
)
from repro.workload.task import Task


def make_cands(**overrides) -> CandidateSet:
    n = 6
    base = dict(
        core_ids=np.array([0, 0, 1, 1, 2, 2]),
        pstates=np.array([0, 1, 0, 1, 0, 1]),
        queue_len=np.array([2, 2, 0, 0, 1, 1]),
        eet=np.array([10.0, 14.0, 11.0, 15.0, 9.0, 13.0]),
        eec=np.array([5.0, 3.0, 6.0, 4.0, 5.5, 3.5]),
        ect=np.array([30.0, 34.0, 11.0, 15.0, 20.0, 24.0]),
        prob_on_time=np.array([0.9, 0.7, 0.95, 0.85, 0.6, 0.4]),
    )
    base.update(overrides)
    return CandidateSet(**base)


def ctx() -> MappingContext:
    return MappingContext(
        t_now=0.0,
        task=Task(0, 0, 0.0, 100.0),
        energy_estimate=1000.0,
        tasks_left=10,
        avg_queue_depth=0.5,
    )


class TestCandidateSet:
    def test_default_mask_all_true(self):
        cands = make_cands()
        assert cands.mask.all()
        assert cands.num_feasible == 6

    def test_len(self):
        assert len(make_cands()) == 6

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            make_cands(eet=np.array([1.0]))

    def test_misaligned_mask_rejected(self):
        with pytest.raises(ValueError):
            make_cands(mask=np.ones(3, dtype=bool))

    def test_assignment_translation(self):
        cands = make_cands()
        assert cands.assignment(3) == Assignment(core_id=1, pstate=1)

    def test_num_feasible_tracks_mask(self):
        cands = make_cands()
        cands.mask[:4] = False
        assert cands.num_feasible == 2


class TestArgminLexicographic:
    def test_simple_min(self):
        vals = np.array([3.0, 1.0, 2.0])
        assert argmin_lexicographic(np.ones(3, dtype=bool), vals) == 1

    def test_respects_mask(self):
        vals = np.array([3.0, 1.0, 2.0])
        mask = np.array([True, False, True])
        assert argmin_lexicographic(mask, vals) == 2

    def test_none_when_all_masked(self):
        assert argmin_lexicographic(np.zeros(3, dtype=bool), np.ones(3)) is None

    def test_tie_break_by_secondary(self):
        primary = np.array([1.0, 1.0, 2.0])
        secondary = np.array([9.0, 3.0, 0.0])
        assert argmin_lexicographic(np.ones(3, dtype=bool), primary, secondary) == 1

    def test_double_tie_takes_lowest_index(self):
        primary = np.array([1.0, 1.0])
        secondary = np.array([2.0, 2.0])
        assert argmin_lexicographic(np.ones(2, dtype=bool), primary, secondary) == 0

    def test_no_secondary_takes_lowest_index(self):
        primary = np.array([1.0, 1.0])
        assert argmin_lexicographic(np.ones(2, dtype=bool), primary) == 0

    def test_secondary_limited_to_primary_ties(self):
        primary = np.array([1.0, 2.0])
        secondary = np.array([9.0, 0.0])
        # Index 1 has better secondary but worse primary: primary wins.
        assert argmin_lexicographic(np.ones(2, dtype=bool), primary, secondary) == 0
