"""The unified plugin registry: registration, lookup, discovery, catalog."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.experiments.runner import TrialPlan, VariantSpec
from repro.filters.chain import (
    FilterChain,
    build_filter_chain,
    canonical_variant,
    make_filter_chain,
)
from repro.heuristics.registry import HEURISTICS, build_heuristic, make_heuristic
from repro.registry import (
    ADMISSION_PLUGINS,
    FILTER_PLUGINS,
    HEURISTIC_PLUGINS,
    PLUGIN_KINDS,
    TRAFFIC_PLUGINS,
    PluginRegistry,
    UnknownPluginError,
    describe_plugins,
    load_entry_point_plugins,
    plugin_table,
    register_heuristic,
    registry_for,
)
from tests.conftest import tiny_config


class TestLookup:
    def test_builtin_names_registered(self):
        assert HEURISTIC_PLUGINS.names() == ("SQ", "MECT", "LL", "Random")
        assert set(FILTER_PLUGINS.names()) == {"en", "rob"}
        assert set(TRAFFIC_PLUGINS.names()) == {
            "poisson", "diurnal", "mmpp", "burst", "replay",
        }
        assert ADMISSION_PLUGINS.names() == ("threshold",)

    def test_case_insensitive_mect(self):
        """Regression: 'mect' and 'MECT' must resolve to the same plugin."""
        assert HEURISTIC_PLUGINS.canonical("mect") == "MECT"
        assert HEURISTIC_PLUGINS.canonical("MECT") == "MECT"
        assert HEURISTIC_PLUGINS.get("mect") is HEURISTIC_PLUGINS.get("MECT")
        assert type(build_heuristic("mect")) is type(build_heuristic("MECT"))

    def test_case_insensitive_trial_results_identical(self, tiny_system):
        """The canonicalized name reaches the rng labels: results match."""
        lower = TrialPlan(
            system=tiny_system, spec=VariantSpec("MECT", "en+rob")
        ).run()
        # Build the spec the way a case-sloppy caller would.
        spec = VariantSpec(
            HEURISTIC_PLUGINS.canonical("mect"), canonical_variant("EN+ROB")
        )
        upper = TrialPlan(system=tiny_system, spec=spec).run()
        assert lower == upper

    def test_unknown_name_is_keyerror_with_suggestion(self):
        with pytest.raises(UnknownPluginError) as info:
            HEURISTIC_PLUGINS.get("MELT")
        assert isinstance(info.value, KeyError)
        assert info.value.suggestion == "MECT"
        assert "did you mean 'MECT'" in str(info.value)

    def test_contains_and_iter(self):
        assert "mect" in HEURISTIC_PLUGINS
        assert "nope" not in HEURISTIC_PLUGINS
        assert list(iter(HEURISTIC_PLUGINS)) == list(HEURISTICS)

    def test_registry_for(self):
        for kind in PLUGIN_KINDS:
            assert registry_for(kind).kind == kind
        with pytest.raises(KeyError):
            registry_for("bogus")


class TestRegistration:
    def test_runtime_registration_and_unregister(self, tiny_system):
        """A third-party heuristic registered at runtime runs end to end."""

        @register_heuristic("greedy-test", summary="test-only heuristic")
        def _make(rng=None):
            return build_heuristic("SQ")  # reuse SQ behavior under a new name

        try:
            assert HEURISTIC_PLUGINS.canonical("GREEDY-TEST") == "greedy-test"
            result = TrialPlan(
                system=tiny_system, spec=VariantSpec("greedy-test", "none")
            ).run()
            assert result.num_tasks == tiny_system.config.workload.num_tasks
        finally:
            HEURISTIC_PLUGINS.unregister("greedy-test")
        assert "greedy-test" not in HEURISTIC_PLUGINS

    def test_duplicate_rejected_unless_replace(self):
        registry = PluginRegistry("heuristic")
        registry.add("x", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.add("X", lambda: 2)
        registry.add("x", lambda: 3, replace=True)
        assert registry.create("x") == 3

    def test_reserved_characters_rejected(self):
        registry = PluginRegistry("filter")
        for bad in ("a+b", "a/b", "", "   "):
            with pytest.raises(ValueError):
                registry.add(bad, lambda: None)

    def test_summary_defaults_to_docstring(self):
        registry = PluginRegistry("traffic")

        def factory():
            """First line becomes the summary.

            Not this one.
            """

        registry.add("doc", factory)
        assert registry.info("doc").summary == "First line becomes the summary."


class TestDeprecationShims:
    def test_make_heuristic_warns_once_and_matches(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = make_heuristic("LL")
        assert [w for w in caught if w.category is DeprecationWarning]
        assert len(caught) == 1
        assert type(shimmed) is type(build_heuristic("LL"))

    def test_make_filter_chain_warns_once_and_matches(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = make_filter_chain("en+rob")
        assert len(caught) == 1
        assert caught[0].category is DeprecationWarning
        assert isinstance(shimmed, FilterChain)
        assert shimmed.label == build_filter_chain("en+rob").label

    def test_build_paths_do_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            build_heuristic("SQ")
            build_filter_chain("en+rob")
        assert caught == []

    def test_make_heuristic_still_raises_keyerror(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(KeyError):
                make_heuristic("OLB")

    def test_random_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            build_heuristic("Random")
        assert build_heuristic("random", np.random.default_rng(1)).name == "Random"


class TestVariants:
    def test_canonical_variant(self):
        assert canonical_variant("EN+ROB") == "en+rob"
        assert canonical_variant("None") == "none"
        assert canonical_variant("rob+en") == "rob+en"  # order preserved

    def test_bad_variant_shapes(self):
        for bad in ("en+en", "en+", "+rob"):
            with pytest.raises(KeyError):
                canonical_variant(bad)
        with pytest.raises(KeyError, match="fast"):
            build_filter_chain("fast")

    def test_chain_construction(self):
        config = tiny_config().filters
        chain = build_filter_chain("en+rob", config)
        assert chain.label == "en+rob"
        assert len(build_filter_chain("none", config)) == 0


class TestDiscovery:
    def test_entry_points_loaded_once(self, monkeypatch):
        """Entry-point discovery imports each hook once and reports errors."""
        import repro.registry as registry_module

        calls = []

        class FakeEntryPoint:
            name = "fake-plugin"

            def load(self):
                def hook():
                    calls.append("loaded")
                    register_heuristic("ep-test", summary="from entry point")(
                        lambda rng=None: build_heuristic("SQ")
                    )
                return hook

        class BrokenEntryPoint:
            name = "broken-plugin"

            def load(self):
                raise ImportError("no such module")

        monkeypatch.setattr(
            registry_module.importlib.metadata,
            "entry_points",
            lambda group: [FakeEntryPoint(), BrokenEntryPoint()],
        )
        try:
            report = load_entry_point_plugins(reload=True)
            assert report == ["fake-plugin", "broken-plugin: no such module"]
            assert calls == ["loaded"]
            assert "ep-test" in HEURISTIC_PLUGINS
            # Memoized: a plain call does not re-run the hooks.
            assert load_entry_point_plugins() == []
            assert calls == ["loaded"]
        finally:
            HEURISTIC_PLUGINS.unregister("ep-test")

    def test_describe_and_table(self):
        rows = describe_plugins()
        kinds = {row["kind"] for row in rows}
        assert kinds == set(PLUGIN_KINDS)
        heuristic_rows = describe_plugins("heuristic")
        assert [r["name"] for r in heuristic_rows] == list(HEURISTICS)
        text = plugin_table(rows)
        assert "MECT" in text and "threshold" in text
        assert plugin_table([]) == "(no plugins registered)"


class TestTrafficPlugins:
    def test_replay_is_not_generative(self):
        with pytest.raises(ValueError, match="replay"):
            TRAFFIC_PLUGINS.create("replay", None)

    def test_generative_streams_are_monotone(self, tiny_system):
        from repro.registry import TrafficContext

        for name in ("poisson", "diurnal", "mmpp", "burst"):
            ctx = TrafficContext(
                rng=rng_mod.stream(123, "test", name),
                mean_rate=0.01,
                phase_length=500.0,
                swing=0.5,
                rate_mult=1.0,
                workload=tiny_system.config.workload,
                rates=tiny_system.workload.rates,
            )
            stream = TRAFFIC_PLUGINS.create(name, ctx)
            times = [t for _, t in zip(range(50), stream)]
            assert len(times) == 50
            assert all(b >= a for a, b in zip(times, times[1:])), name
