"""Property test: CoreState's incremental queue convolution is exact.

``CoreState.enqueue`` extends the cached queue convolution in place when
the appended pmf is at least as long as every queued one (it would fold
last in ``convolve_many``'s smallest-first order anyway) and invalidates
the cache otherwise; ``pop_next`` / ``remove_queued`` always invalidate.
The property pinned here: under *any* interleaving of those mutations,
``ready_pmf`` is bitwise equal to the from-scratch recomputation —
``truncate_below(shift(running, start), t)`` convolved with
``convolve_many`` over the current queue — so the incremental fast path
can never drift from the reference fold.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.state import CoreState, QueuedTask, RunningTask
from repro.stoch.distributions import discretized_gamma
from repro.stoch.ops import convolve, convolve_many, shift, truncate_below
from repro.workload.task import Task

DT = 25.0
T_NOW = 130.0

#: Execution-pmf means spanning short and long supports, so random
#: enqueue orders hit both the incremental branch (appending the longest
#: pmf so far) and the invalidation branch (appending a shorter one).
MEANS = (120.0, 300.0, 700.0, 1500.0)


def _task(task_id: int) -> Task:
    return Task(task_id=task_id, type_id=0, arrival=0.0, deadline=1e9)


def _queued(task_id: int, mean: float) -> QueuedTask:
    return QueuedTask(
        task=_task(task_id), pstate=0, exec_pmf=discretized_gamma(mean, 0.4, DT)
    )


#: An op is ("enqueue", mean) | ("pop",) | ("remove", position-draw).
ops = st.lists(
    st.one_of(
        st.tuples(st.just("enqueue"), st.sampled_from(MEANS)),
        st.tuples(st.just("pop")),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=7)),
    ),
    min_size=1,
    max_size=12,
)


def _reference_ready(state: CoreState) -> object:
    running = state.running
    assert running is not None
    running_c = truncate_below(shift(running.exec_pmf, running.start_time), T_NOW)
    if not state.queue:
        return running_c
    qconv = convolve_many([e.exec_pmf for e in state.queue])
    return convolve(running_c, qconv)


@given(ops)
def test_ready_pmf_matches_from_scratch_fold(op_list):
    state = CoreState(core_id=0, node_index=0, dt=DT)
    state.set_running(
        RunningTask(
            task=_task(0),
            pstate=0,
            exec_pmf=discretized_gamma(400.0, 0.4, DT),
            start_time=50.0,
            completion_time=450.0,
        )
    )
    next_id = 1
    for op in op_list:
        if op[0] == "enqueue":
            state.enqueue(_queued(next_id, op[1]))
            next_id += 1
        elif op[0] == "pop":
            state.pop_next()
        else:
            if state.queue:
                victim = list(state.queue)[op[1] % len(state.queue)]
                state.remove_queued(victim.task.task_id)
        got = state.ready_pmf(T_NOW)
        ref = _reference_ready(state)
        assert got.start == ref.start
        assert got.dt == ref.dt
        assert got.probs.tobytes() == ref.probs.tobytes()
