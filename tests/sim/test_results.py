"""Tests for result records (repro.sim.results)."""

from __future__ import annotations

import math

import pytest

from repro.sim.results import TaskOutcome, TrialResult


def outcome(completion: float = 50.0, deadline: float = 60.0, discarded: bool = False):
    return TaskOutcome(
        task_id=0,
        type_id=1,
        arrival=0.0,
        deadline=deadline,
        core_id=-1 if discarded else 2,
        pstate=-1 if discarded else 1,
        start=float("nan") if discarded else 10.0,
        completion=float("nan") if discarded else completion,
        discarded=discarded,
    )


def result(**overrides) -> TrialResult:
    base = dict(
        heuristic="LL",
        variant="en+rob",
        seed=7,
        num_tasks=10,
        missed=4,
        completed_within=6,
        discarded=1,
        late=2,
        energy_cutoff=1,
        total_energy=900.0,
        budget=1000.0,
        exhaustion_time=float("inf"),
        makespan=5000.0,
        outcomes=(),
    )
    base.update(overrides)
    return TrialResult(**base)


class TestTaskOutcome:
    def test_on_time(self):
        assert outcome(50.0, 60.0).on_time()

    def test_late(self):
        assert not outcome(61.0, 60.0).on_time()

    def test_boundary_counts_as_on_time(self):
        assert outcome(60.0, 60.0).on_time()

    def test_discarded_never_on_time(self):
        assert not outcome(discarded=True).on_time()


class TestTrialResult:
    def test_consistency_enforced(self):
        with pytest.raises(ValueError):
            result(missed=5)  # decomposition no longer adds up

    def test_total_coverage_enforced(self):
        with pytest.raises(ValueError):
            result(num_tasks=11)

    def test_miss_fraction(self):
        assert result().miss_fraction == pytest.approx(0.4)

    def test_label(self):
        assert result().label == "LL/en+rob"

    def test_energy_utilization(self):
        assert result().energy_utilization() == pytest.approx(0.9)

    def test_completion_times_skips_discarded(self):
        outcomes = (outcome(50.0), outcome(discarded=True), outcome(70.0, 60.0))
        r = result(
            num_tasks=3,
            missed=2,
            completed_within=1,
            discarded=1,
            late=1,
            energy_cutoff=0,
            outcomes=outcomes,
        )
        times = r.completion_times()
        assert times.tolist() == [50.0, 70.0]
        assert not any(math.isnan(t) for t in times)
