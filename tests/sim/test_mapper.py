"""Tests for candidate-set construction (repro.sim.mapper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.robustness.completion import prob_on_time
from repro.sim.mapper import build_candidate_set
from repro.sim.state import CoreState, QueuedTask, RunningTask


@pytest.fixture()
def cores(tiny_system):
    cluster = tiny_system.cluster
    dt = tiny_system.config.grid.dt
    return [
        CoreState(cid, int(cluster.core_node_index[cid]), dt)
        for cid in range(cluster.num_cores)
    ]


class TestBuildCandidates:
    def test_shape_and_ordering(self, tiny_system, cores):
        task = tiny_system.workload.tasks[0]
        cands = build_candidate_set(task, cores, tiny_system.table, t_now=task.arrival)
        C = tiny_system.cluster.num_cores
        P = tiny_system.cluster.num_pstates
        assert len(cands) == C * P
        assert np.array_equal(cands.core_ids, np.repeat(np.arange(C), P))
        assert np.array_equal(cands.pstates, np.tile(np.arange(P), C))
        assert cands.mask.all()

    def test_eet_eec_from_tables(self, tiny_system, cores):
        task = tiny_system.workload.tasks[0]
        cands = build_candidate_set(task, cores, tiny_system.table, t_now=task.arrival)
        node0 = cores[0].node_index
        assert cands.eet[0] == pytest.approx(tiny_system.table.eet[task.type_id, node0, 0])
        assert cands.eec[1] == pytest.approx(tiny_system.table.eec[task.type_id, node0, 1])

    def test_ect_on_idle_cores_is_arrival_plus_eet(self, tiny_system, cores):
        task = tiny_system.workload.tasks[0]
        t = task.arrival
        cands = build_candidate_set(task, cores, tiny_system.table, t_now=t)
        assert np.allclose(cands.ect, t + cands.eet)

    def test_queue_len_reflects_occupancy(self, tiny_system, cores):
        task = tiny_system.workload.tasks[0]
        t = task.arrival
        pmf = tiny_system.table.pmf(task.type_id, cores[0].node_index, 0)
        cores[0].set_running(
            RunningTask(task, 0, pmf, start_time=t, completion_time=t + 100)
        )
        cores[0].enqueue(QueuedTask(task, 0, pmf))
        cands = build_candidate_set(task, cores, tiny_system.table, t_now=t)
        P = tiny_system.cluster.num_pstates
        assert np.all(cands.queue_len[:P] == 2)
        assert np.all(cands.queue_len[P:] == 0)

    def test_prob_matches_scalar_reference(self, tiny_system, cores):
        task = tiny_system.workload.tasks[3]
        t = task.arrival
        cands = build_candidate_set(task, cores, tiny_system.table, t_now=t)
        P = tiny_system.cluster.num_pstates
        for cid in (0, len(cores) - 1):
            ready = cores[cid].ready_pmf(t)
            for pi in range(P):
                expected = prob_on_time(
                    ready,
                    tiny_system.table.pmf(task.type_id, cores[cid].node_index, pi),
                    task.deadline,
                )
                assert cands.prob_on_time[cid * P + pi] == pytest.approx(expected, abs=1e-12)

    def test_probabilities_are_probabilities(self, tiny_system, cores):
        task = tiny_system.workload.tasks[0]
        cands = build_candidate_set(task, cores, tiny_system.table, t_now=task.arrival)
        assert np.all(cands.prob_on_time >= 0.0)
        assert np.all(cands.prob_on_time <= 1.0 + 1e-12)

    def test_deeper_pstate_never_more_robust_on_same_core(self, tiny_system, cores):
        # Slower execution cannot raise the on-time probability.
        task = tiny_system.workload.tasks[0]
        cands = build_candidate_set(task, cores, tiny_system.table, t_now=task.arrival)
        P = tiny_system.cluster.num_pstates
        probs = cands.prob_on_time.reshape(-1, P)
        assert np.all(np.diff(probs, axis=1) <= 1e-6)

    def test_busy_core_less_robust_than_idle_twin(self, tiny_system, cores):
        # Two cores of the same node: loading one lowers its probability.
        cluster = tiny_system.cluster
        twins = None
        node_idx = cluster.core_node_index
        for cid in range(1, cluster.num_cores):
            if node_idx[cid] == node_idx[cid - 1]:
                twins = (cid - 1, cid)
                break
        if twins is None:
            pytest.skip("generated cluster has no same-node core pair")
        task = tiny_system.workload.tasks[0]
        t = task.arrival
        pmf = tiny_system.table.pmf(task.type_id, cores[twins[0]].node_index, 0)
        cores[twins[0]].set_running(
            RunningTask(task, 0, pmf, start_time=t, completion_time=t + 1)
        )
        cands = build_candidate_set(task, cores, tiny_system.table, t_now=t)
        P = cluster.num_pstates
        busy = cands.prob_on_time[twins[0] * P]
        idle = cands.prob_on_time[twins[1] * P]
        assert busy <= idle + 1e-9


class TestDeprecatedAlias:
    def test_build_candidates_warns_and_matches(self, tiny_system, cores):
        from repro.sim.mapper import build_candidates

        task = tiny_system.workload.tasks[0]
        expected = build_candidate_set(task, cores, tiny_system.table, t_now=task.arrival)
        with pytest.warns(DeprecationWarning, match="build_candidate_set"):
            cands = build_candidates(task, cores, tiny_system.table, t_now=task.arrival)
        assert np.array_equal(cands.prob_on_time, expected.prob_on_time)
        assert np.array_equal(cands.ect, expected.ect)
        assert np.array_equal(cands.eec, expected.eec)
