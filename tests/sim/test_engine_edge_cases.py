"""Engine edge cases: degenerate topologies, budgets and workloads."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import SimulationConfig, build_trial_system
from repro.config import IdlePowerMode
from repro.filters.chain import make_filter_chain
from repro.heuristics.lightest_load import LightestLoad
from repro.heuristics.mect import MinimumExpectedCompletionTime
from repro.sim.engine import run_trial
from repro.workload.task import Task


def tiny(seed: int = 1, **updates) -> SimulationConfig:
    cfg = SimulationConfig(seed=seed).with_updates(
        workload={
            "num_tasks": 30,
            "num_task_types": 5,
            "burst_head": 10,
            "burst_tail": 10,
        },
        cluster={"num_nodes": 2},
    )
    return cfg.with_updates(**updates) if updates else cfg


class TestDegenerateTopology:
    def test_single_core_cluster(self):
        cfg = tiny(
            cluster={
                "num_nodes": 1,
                "min_processors": 1,
                "max_processors": 1,
                "min_cores": 1,
                "max_cores": 1,
            }
        )
        system = build_trial_system(cfg)
        assert system.cluster.num_cores == 1
        result = run_trial(system, MinimumExpectedCompletionTime(), make_filter_chain("none"))
        # Everything serializes through one core: heavy queueing but
        # accounting must still close.
        assert result.missed + result.completed_within == 30
        by_start = sorted(
            (o for o in result.outcomes if not o.discarded), key=lambda o: o.start
        )
        for a, b in zip(by_start, by_start[1:]):
            assert b.start >= a.completion - 1e-9

    def test_two_pstate_cluster(self):
        cfg = tiny(cluster={"num_pstates": 2})
        system = build_trial_system(cfg)
        result = run_trial(system, LightestLoad(), make_filter_chain("en+rob"))
        assert all(o.pstate in (-1, 0, 1) for o in result.outcomes)


class TestDegenerateWorkload:
    def test_all_burst_no_lull(self):
        cfg = tiny(workload={"burst_head": 15, "burst_tail": 15})
        system = build_trial_system(cfg)
        result = run_trial(system, MinimumExpectedCompletionTime(), make_filter_chain("none"))
        assert result.num_tasks == 30

    def test_single_task(self):
        # Idle energy excluded: a one-task budget cannot cover the whole
        # cluster's P4 floor, which is a property of the model, not a bug.
        cfg = SimulationConfig(seed=2).with_updates(
            workload={
                "num_tasks": 1,
                "num_task_types": 2,
                "burst_head": 1,
                "burst_tail": 0,
            },
            cluster={"num_nodes": 2},
            energy={"idle_power_mode": IdlePowerMode.EXCLUDED},
        )
        system = build_trial_system(cfg)
        result = run_trial(system, LightestLoad(), make_filter_chain("en+rob"))
        assert result.num_tasks == 1
        # A lone task on an idle cluster with a fresh budget must count.
        assert result.completed_within == 1

    def test_single_task_p4_floor_budget_gap(self):
        # Companion check: under the paper's idle floor the same lone
        # task is cut off — the per-task budget excludes idle burn.
        cfg = SimulationConfig(seed=2).with_updates(
            workload={
                "num_tasks": 1,
                "num_task_types": 2,
                "burst_head": 1,
                "burst_tail": 0,
            },
            cluster={"num_nodes": 2},
        )
        system = build_trial_system(cfg)
        result = run_trial(system, LightestLoad(), make_filter_chain("en+rob"))
        assert result.total_energy > result.budget

    def test_simultaneous_arrivals(self):
        system = build_trial_system(tiny(seed=3))
        # Force the first five arrivals to the same instant.
        t0 = system.workload.tasks[4].arrival
        tasks = list(system.workload.tasks)
        for i in range(5):
            old = tasks[i]
            tasks[i] = Task(
                task_id=old.task_id,
                type_id=old.type_id,
                arrival=t0,
                deadline=t0 + (old.deadline - old.arrival),
            )
        workload = replace(system.workload, tasks=tuple(tasks))
        system = replace(system, workload=workload)
        result = run_trial(system, MinimumExpectedCompletionTime(), make_filter_chain("none"))
        assert len(result.outcomes) == 30
        firsts = [o for o in result.outcomes[:5]]
        # Simultaneous arrivals map in task-id order, deterministically.
        assert all(not o.discarded for o in firsts)


class TestBudgetExtremes:
    def test_huge_budget_never_exhausts(self):
        cfg = tiny(energy={"budget_mult": 100.0})
        system = build_trial_system(cfg)
        result = run_trial(system, MinimumExpectedCompletionTime(), make_filter_chain("none"))
        assert result.exhaustion_time == float("inf")
        assert result.energy_cutoff == 0

    def test_tiny_budget_cuts_everything(self):
        cfg = tiny(energy={"budget_mult": 1e-6})
        system = build_trial_system(cfg)
        result = run_trial(system, MinimumExpectedCompletionTime(), make_filter_chain("none"))
        # Unfiltered: tasks still execute, but nothing counts after the
        # (immediate) exhaustion.
        assert result.completed_within == 0

    def test_tiny_budget_with_filter_discards(self):
        cfg = tiny(energy={"budget_mult": 1e-6})
        system = build_trial_system(cfg)
        result = run_trial(system, LightestLoad(), make_filter_chain("en"))
        # The energy filter sees no fair share at all: every task is
        # discarded at mapping time.
        assert result.discarded == result.num_tasks

    def test_excluded_idle_mode_runs(self):
        cfg = tiny(energy={"idle_power_mode": IdlePowerMode.EXCLUDED})
        system = build_trial_system(cfg)
        result = run_trial(system, LightestLoad(), make_filter_chain("en+rob"))
        assert result.total_energy > 0.0
