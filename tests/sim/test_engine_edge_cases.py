"""Engine edge cases: degenerate topologies, budgets, workloads and
the documented event-ordering tie-breaks."""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro import SimulationConfig, build_trial_system
from repro.config import IdlePowerMode
from repro.filters.chain import build_filter_chain
from repro.heuristics.lightest_load import LightestLoad
from repro.heuristics.mect import MinimumExpectedCompletionTime
from repro.sim.engine import run_trial
from repro.workload.task import Task
from tests.conftest import micro_config as tiny


class RecordingHooks:
    """EngineHooks implementation that logs every hook call in order."""

    def __init__(self):
        self.events = []

    def on_mapped(self, engine, task, core_id, pstate):
        self.events.append(("mapped", engine.now, task.task_id, core_id))

    def on_discarded(self, engine, task):
        self.events.append(("discarded", engine.now, task.task_id, -1))

    def on_completion(self, engine, core_id, task, t_now):
        self.events.append(("completed", t_now, task.task_id, core_id))


class TestDegenerateTopology:
    def test_single_core_cluster(self):
        cfg = tiny(
            cluster={
                "num_nodes": 1,
                "min_processors": 1,
                "max_processors": 1,
                "min_cores": 1,
                "max_cores": 1,
            }
        )
        system = build_trial_system(cfg)
        assert system.cluster.num_cores == 1
        result = run_trial(system, MinimumExpectedCompletionTime(), build_filter_chain("none"))
        # Everything serializes through one core: heavy queueing but
        # accounting must still close.
        assert result.missed + result.completed_within == 30
        by_start = sorted(
            (o for o in result.outcomes if not o.discarded), key=lambda o: o.start
        )
        for a, b in zip(by_start, by_start[1:]):
            assert b.start >= a.completion - 1e-9

    def test_two_pstate_cluster(self):
        cfg = tiny(cluster={"num_pstates": 2})
        system = build_trial_system(cfg)
        result = run_trial(system, LightestLoad(), build_filter_chain("en+rob"))
        assert all(o.pstate in (-1, 0, 1) for o in result.outcomes)


class TestDegenerateWorkload:
    def test_all_burst_no_lull(self):
        cfg = tiny(workload={"burst_head": 15, "burst_tail": 15})
        system = build_trial_system(cfg)
        result = run_trial(system, MinimumExpectedCompletionTime(), build_filter_chain("none"))
        assert result.num_tasks == 30

    def test_single_task(self):
        # Idle energy excluded: a one-task budget cannot cover the whole
        # cluster's P4 floor, which is a property of the model, not a bug.
        cfg = SimulationConfig(seed=2).with_updates(
            workload={
                "num_tasks": 1,
                "num_task_types": 2,
                "burst_head": 1,
                "burst_tail": 0,
            },
            cluster={"num_nodes": 2},
            energy={"idle_power_mode": IdlePowerMode.EXCLUDED},
        )
        system = build_trial_system(cfg)
        result = run_trial(system, LightestLoad(), build_filter_chain("en+rob"))
        assert result.num_tasks == 1
        # A lone task on an idle cluster with a fresh budget must count.
        assert result.completed_within == 1

    def test_single_task_p4_floor_budget_gap(self):
        # Companion check: under the paper's idle floor the same lone
        # task is cut off — the per-task budget excludes idle burn.
        cfg = SimulationConfig(seed=2).with_updates(
            workload={
                "num_tasks": 1,
                "num_task_types": 2,
                "burst_head": 1,
                "burst_tail": 0,
            },
            cluster={"num_nodes": 2},
        )
        system = build_trial_system(cfg)
        result = run_trial(system, LightestLoad(), build_filter_chain("en+rob"))
        assert result.total_energy > result.budget

    def test_simultaneous_arrivals(self):
        system = build_trial_system(tiny(seed=3))
        # Force the first five arrivals to the same instant.
        t0 = system.workload.tasks[4].arrival
        tasks = list(system.workload.tasks)
        for i in range(5):
            old = tasks[i]
            tasks[i] = Task(
                task_id=old.task_id,
                type_id=old.type_id,
                arrival=t0,
                deadline=t0 + (old.deadline - old.arrival),
            )
        workload = replace(system.workload, tasks=tuple(tasks))
        system = replace(system, workload=workload)
        result = run_trial(system, MinimumExpectedCompletionTime(), build_filter_chain("none"))
        assert len(result.outcomes) == 30
        firsts = [o for o in result.outcomes[:5]]
        # Simultaneous arrivals map in task-id order, deterministically.
        assert all(not o.discarded for o in firsts)


class TestBudgetExtremes:
    def test_huge_budget_never_exhausts(self):
        cfg = tiny(energy={"budget_mult": 100.0})
        system = build_trial_system(cfg)
        result = run_trial(system, MinimumExpectedCompletionTime(), build_filter_chain("none"))
        assert result.exhaustion_time == float("inf")
        assert result.energy_cutoff == 0

    def test_tiny_budget_cuts_everything(self):
        cfg = tiny(energy={"budget_mult": 1e-6})
        system = build_trial_system(cfg)
        result = run_trial(system, MinimumExpectedCompletionTime(), build_filter_chain("none"))
        # Unfiltered: tasks still execute, but nothing counts after the
        # (immediate) exhaustion.
        assert result.completed_within == 0

    def test_tiny_budget_with_filter_discards(self):
        cfg = tiny(energy={"budget_mult": 1e-6})
        system = build_trial_system(cfg)
        result = run_trial(system, LightestLoad(), build_filter_chain("en"))
        # The energy filter sees no fair share at all: every task is
        # discarded at mapping time.
        assert result.discarded == result.num_tasks

    def test_excluded_idle_mode_runs(self):
        cfg = tiny(energy={"idle_power_mode": IdlePowerMode.EXCLUDED})
        system = build_trial_system(cfg)
        result = run_trial(system, LightestLoad(), build_filter_chain("en+rob"))
        assert result.total_energy > 0.0


def _with_arrival_at(system, task_index: int, arrival: float):
    """Copy ``system`` with one task's arrival (and deadline slack) moved."""
    tasks = list(system.workload.tasks)
    old = tasks[task_index]
    tasks[task_index] = Task(
        task_id=old.task_id,
        type_id=old.type_id,
        arrival=arrival,
        deadline=arrival + (old.deadline - old.arrival),
    )
    workload = replace(system.workload, tasks=tuple(tasks))
    return replace(system, workload=workload)


class TestEventOrderingTieBreaks:
    """engine.py's documented ordering: completions before arrivals at
    identical timestamps, so a just-freed core is visible to the mapper."""

    def _tie_system(self, seed: int = 7):
        """A system where some task arrives exactly at a completion time.

        Run once to learn a completion time ``t_c``, then move the first
        task whose arrival lies beyond ``t_c`` to exactly ``t_c``.  All
        events before ``t_c`` involve only unmoved earlier tasks, so the
        completion still happens at ``t_c`` in the modified system.
        """
        system = build_trial_system(tiny(seed=seed))
        base = run_trial(
            system, MinimumExpectedCompletionTime(), build_filter_chain("none")
        )
        tasks = system.workload.tasks
        for outcome in sorted(
            (o for o in base.outcomes if not o.discarded), key=lambda o: o.completion
        ):
            for j, task in enumerate(tasks):
                if task.arrival > outcome.completion:
                    return _with_arrival_at(system, j, outcome.completion), outcome, j
        pytest.fail("no completion with a later arrival found")

    def test_completion_processed_before_simultaneous_arrival(self):
        system, done, j = self._tie_system()
        t_c = done.completion
        hooks = RecordingHooks()
        run_trial(system, MinimumExpectedCompletionTime(), build_filter_chain("none"), hooks=hooks)
        idx_completed = hooks.events.index(("completed", t_c, done.task_id, done.core_id))
        (idx_mapped,) = [
            i
            for i, (kind, _t, task_id, _c) in enumerate(hooks.events)
            if kind == "mapped" and task_id == j
        ]
        assert hooks.events[idx_mapped][1] == t_c  # the tie really happened
        assert idx_completed < idx_mapped

    def test_freed_core_visible_to_mapper_at_tie(self):
        system, done, j = self._tie_system()

        class FreedCoreProbe(RecordingHooks):
            """Snapshot the freed core's occupant when task j maps."""

            def on_mapped(self, engine, task, core_id, pstate):
                super().on_mapped(engine, task, core_id, pstate)
                if task.task_id == j:
                    running = engine.cores[done.core_id].running
                    self.freed_core_running = (
                        None if running is None else running.task.task_id
                    )

        hooks = FreedCoreProbe()
        run_trial(system, MinimumExpectedCompletionTime(), build_filter_chain("none"), hooks=hooks)
        # By the time the simultaneous arrival maps, the completed task
        # no longer occupies its core: the mapper saw the freed core.
        assert hooks.freed_core_running != done.task_id

    def test_tie_break_ordering_is_reproducible(self):
        system, _done, _j = self._tie_system()
        runs = []
        for _ in range(2):
            hooks = RecordingHooks()
            run_trial(
                system, MinimumExpectedCompletionTime(), build_filter_chain("none"), hooks=hooks
            )
            runs.append(hooks.events)
        assert runs[0] == runs[1]


class TestEmptyFeasibleSetDiscard:
    def test_discard_path_fires_hook_and_records_outcome(self):
        # A vanishing budget starves the energy filter's fair share, so
        # every arrival's feasible set filters empty.
        cfg = tiny(energy={"budget_mult": 1e-6})
        system = build_trial_system(cfg)
        hooks = RecordingHooks()
        result = run_trial(system, LightestLoad(), build_filter_chain("en"), hooks=hooks)
        assert result.discarded == result.num_tasks
        assert {kind for kind, *_ in hooks.events} == {"discarded"}
        # One hook call per task, in arrival order.
        assert [task_id for _k, _t, task_id, _c in hooks.events] == list(
            range(result.num_tasks)
        )
        for outcome in result.outcomes:
            assert outcome.discarded
            assert outcome.core_id == -1 and outcome.pstate == -1
            assert math.isnan(outcome.start) and math.isnan(outcome.completion)
            assert not outcome.on_time()
