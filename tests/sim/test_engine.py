"""Tests for the discrete-event engine (repro.sim.engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.energy import IDLE_PSTATE
from repro.config import IdlePowerMode
from repro.filters.chain import build_filter_chain
from repro.heuristics.lightest_load import LightestLoad
from repro.heuristics.mect import MinimumExpectedCompletionTime
from repro.heuristics.shortest_queue import ShortestQueue
from repro.sim.engine import Engine, run_trial
from repro.sim.metrics import TraceCollector
from repro import build_trial_system
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def mect_result(tiny_system):
    return run_trial(tiny_system, MinimumExpectedCompletionTime(), build_filter_chain("none"))


class TestAccounting:
    def test_every_task_has_an_outcome(self, tiny_system, mect_result):
        assert len(mect_result.outcomes) == tiny_system.num_tasks
        ids = [o.task_id for o in mect_result.outcomes]
        assert ids == list(range(tiny_system.num_tasks))

    def test_miss_decomposition(self, mect_result):
        assert (
            mect_result.missed
            == mect_result.discarded + mect_result.late + mect_result.energy_cutoff
        )
        assert mect_result.missed + mect_result.completed_within == mect_result.num_tasks

    def test_unfiltered_run_discards_nothing(self, mect_result):
        # With no filters, the feasible set is never empty.
        assert mect_result.discarded == 0

    def test_makespan_covers_all_completions(self, mect_result):
        completions = mect_result.completion_times()
        assert completions.max() <= mect_result.makespan + 1e-9


class TestSchedulingSemantics:
    def test_starts_respect_arrivals(self, mect_result):
        for o in mect_result.outcomes:
            if not o.discarded:
                assert o.start >= o.arrival - 1e-9

    def test_immediate_start_on_idle_system(self, tiny_system, mect_result):
        # The very first task arrives to an all-idle cluster.
        first = mect_result.outcomes[0]
        assert first.start == pytest.approx(first.arrival)

    def test_fifo_per_core(self, mect_result):
        # Tasks mapped to one core start in the order they were mapped
        # (arrival order, since mapping is immediate).
        by_core: dict[int, list] = {}
        for o in mect_result.outcomes:
            if not o.discarded:
                by_core.setdefault(o.core_id, []).append(o)
        for outcomes in by_core.values():
            starts = [o.start for o in outcomes]  # already in arrival order
            assert all(b >= a - 1e-9 for a, b in zip(starts, starts[1:]))

    def test_no_core_overlap(self, mect_result):
        by_core: dict[int, list] = {}
        for o in mect_result.outcomes:
            if not o.discarded:
                by_core.setdefault(o.core_id, []).append(o)
        for outcomes in by_core.values():
            for a, b in zip(outcomes, outcomes[1:]):
                assert b.start >= a.completion - 1e-9

    def test_actual_time_within_pmf_support(self, tiny_system, mect_result):
        cluster = tiny_system.cluster
        for o in mect_result.outcomes:
            if o.discarded:
                continue
            node = int(cluster.core_node_index[o.core_id])
            pmf = tiny_system.table.pmf(o.type_id, node, o.pstate)
            duration = o.completion - o.start
            assert pmf.start - 1e-9 <= duration <= pmf.stop + 1e-9

    def test_luck_quantile_reproduces_duration(self, tiny_system, mect_result):
        cluster = tiny_system.cluster
        for o in mect_result.outcomes[:20]:
            if o.discarded:
                continue
            node = int(cluster.core_node_index[o.core_id])
            pmf = tiny_system.table.pmf(o.type_id, node, o.pstate)
            expected = pmf.quantile(float(tiny_system.exec_luck[o.task_id]))
            assert o.completion - o.start == pytest.approx(expected)


class TestEnergySemantics:
    def test_ledger_total_matches_result(self, tiny_system):
        engine = Engine(tiny_system, ShortestQueue(), build_filter_chain("none"))
        result = engine.run()
        assert result.total_energy == pytest.approx(engine.ledger.total_energy())

    def test_excluded_mode_energy_equals_execution_sum(self):
        cfg = tiny_config(seed=31).with_updates(
            energy={"idle_power_mode": IdlePowerMode.EXCLUDED}
        )
        system = build_trial_system(cfg)
        result = run_trial(system, ShortestQueue(), build_filter_chain("none"))
        cluster = system.cluster
        power = cluster.power_table()
        eff = cluster.efficiency_vector()
        expected = 0.0
        for o in result.outcomes:
            if o.discarded:
                continue
            node = int(cluster.core_node_index[o.core_id])
            expected += (o.completion - o.start) * power[node, o.pstate] / eff[node]
        assert result.total_energy == pytest.approx(expected, rel=1e-9)

    def test_p4_floor_adds_idle_energy(self, tiny_system):
        result_floor = run_trial(tiny_system, ShortestQueue(), build_filter_chain("none"))
        cfg = tiny_config().with_updates(
            energy={"idle_power_mode": IdlePowerMode.EXCLUDED}
        )
        system_excl = build_trial_system(cfg)
        result_excl = run_trial(system_excl, ShortestQueue(), build_filter_chain("none"))
        assert result_floor.total_energy > result_excl.total_energy

    def test_transitions_alternate_sanely(self, tiny_system):
        engine = Engine(tiny_system, MinimumExpectedCompletionTime(), build_filter_chain("none"))
        engine.run()
        for cid in range(tiny_system.cluster.num_cores):
            trail = engine.ledger.transitions(cid)
            assert trail[0].pstate == IDLE_PSTATE
            assert trail[-1].pstate == IDLE_PSTATE
            times = [t.time for t in trail]
            assert all(b >= a for a, b in zip(times, times[1:]))

    def test_energy_estimate_decreases(self, tiny_system):
        collector = TraceCollector()
        run_trial(
            tiny_system,
            MinimumExpectedCompletionTime(),
            build_filter_chain("none"),
            collector=collector,
        )
        est = collector.energy_estimates
        assert all(b <= a + 1e-9 for a, b in zip(est, est[1:]))
        assert est[0] < tiny_system.budget  # first mapping already paid


class TestDeterminism:
    def test_same_engine_inputs_same_result(self, tiny_system):
        a = run_trial(tiny_system, LightestLoad(), build_filter_chain("en+rob"))
        b = run_trial(tiny_system, LightestLoad(), build_filter_chain("en+rob"))
        assert a == b

    def test_engine_runs_once(self, tiny_system):
        engine = Engine(tiny_system, ShortestQueue(), build_filter_chain("none"))
        engine.run()
        with pytest.raises(RuntimeError):
            engine.run()


class TestCollector:
    def test_one_record_per_arrival(self, tiny_system):
        collector = TraceCollector()
        run_trial(tiny_system, ShortestQueue(), build_filter_chain("none"), collector=collector)
        assert len(collector.arrival_times) == tiny_system.num_tasks
        assert len(collector.chosen_pstates) == tiny_system.num_tasks

    def test_pstate_histogram_totals(self, tiny_system):
        collector = TraceCollector()
        result = run_trial(
            tiny_system, ShortestQueue(), build_filter_chain("none"), collector=collector
        )
        hist = collector.pstate_histogram(tiny_system.cluster.num_pstates)
        assert hist.sum() == tiny_system.num_tasks - result.discarded

    def test_as_arrays(self, tiny_system):
        collector = TraceCollector()
        run_trial(tiny_system, ShortestQueue(), build_filter_chain("none"), collector=collector)
        arrays = collector.as_arrays()
        assert set(arrays) == {
            "arrival_times",
            "queue_depths",
            "energy_estimates",
            "chosen_pstates",
            "chosen_probs",
            "feasible_counts",
        }
        assert arrays["arrival_times"].shape == (tiny_system.num_tasks,)


class _CountingHooks:
    def __init__(self):
        self.mapped = 0
        self.discarded = 0
        self.completed = 0

    def on_mapped(self, engine, task, core_id, pstate):
        self.mapped += 1

    def on_discarded(self, engine, task):
        self.discarded += 1

    def on_completion(self, engine, core_id, task, t_now):
        self.completed += 1


class TestHooks:
    def test_hook_counts_cover_workload(self, tiny_system):
        hooks = _CountingHooks()
        result = run_trial(
            tiny_system, LightestLoad(), build_filter_chain("en+rob"), hooks=hooks
        )
        assert hooks.mapped + hooks.discarded == tiny_system.num_tasks
        assert hooks.completed == hooks.mapped
        assert result.discarded == hooks.discarded
