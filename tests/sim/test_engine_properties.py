"""Property-based engine invariants over random tiny configurations.

Hypothesis drives the whole stack (cluster generation, CVB, arrivals,
engine) through random seeds and small shape parameters, asserting the
structural invariants that must hold for *every* trial regardless of
policy:

* accounting closes (every task exactly one outcome; decomposition sums);
* causality (no task starts before its arrival; FIFO cores never overlap);
* actual durations lie within the sampled pmf's support;
* the ledger's consumed energy is non-negative and reproducible.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SimulationConfig, build_trial_system
from repro.filters.chain import build_filter_chain
from repro.heuristics.registry import build_heuristic
from repro import rng as rng_mod
from repro.sim.engine import run_trial


@st.composite
def engine_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    num_tasks = draw(st.integers(min_value=5, max_value=30))
    num_nodes = draw(st.integers(min_value=1, max_value=3))
    heuristic = draw(st.sampled_from(["SQ", "MECT", "LL", "Random"]))
    variant = draw(st.sampled_from(["none", "en", "rob", "en+rob"]))
    head = min(num_tasks // 3, 5)
    config = SimulationConfig(seed=seed).with_updates(
        workload={
            "num_tasks": num_tasks,
            "num_task_types": 4,
            "burst_head": head,
            "burst_tail": head,
        },
        cluster={"num_nodes": num_nodes, "max_processors": 2, "max_cores": 2},
    )
    return config, heuristic, variant


@given(engine_cases())
@settings(max_examples=15, deadline=None)
def test_engine_invariants(case):
    config, heuristic_name, variant = case
    system = build_trial_system(config)
    heuristic = build_heuristic(
        heuristic_name, rng_mod.stream(config.seed, "prop", heuristic_name)
    )
    result = run_trial(system, heuristic, build_filter_chain(variant))

    # Accounting closes.
    assert len(result.outcomes) == system.num_tasks
    assert result.missed == result.discarded + result.late + result.energy_cutoff
    assert result.missed + result.completed_within == system.num_tasks

    # Causality and per-core exclusivity.
    by_core: dict[int, list] = {}
    for outcome in result.outcomes:
        if outcome.discarded:
            assert outcome.core_id == -1
            continue
        assert outcome.start >= outcome.arrival - 1e-9
        assert outcome.completion > outcome.start
        by_core.setdefault(outcome.core_id, []).append(outcome)
    for outcomes in by_core.values():
        ordered = sorted(outcomes, key=lambda o: o.start)
        for a, b in zip(ordered, ordered[1:]):
            assert b.start >= a.completion - 1e-9

    # Durations live on the assigned pmf's support.
    cluster = system.cluster
    for outcome in result.outcomes:
        if outcome.discarded:
            continue
        node = int(cluster.core_node_index[outcome.core_id])
        pmf = system.table.pmf(outcome.type_id, node, outcome.pstate)
        duration = outcome.completion - outcome.start
        assert pmf.start - 1e-9 <= duration <= pmf.stop + 1e-9

    # Energy sanity and makespan coverage.
    assert result.total_energy >= 0.0
    assert result.makespan >= max(t.arrival for t in system.workload.tasks) - 1e-9


@given(engine_cases())
@settings(max_examples=8, deadline=None)
def test_engine_determinism(case):
    config, heuristic_name, variant = case
    system = build_trial_system(config)

    def once():
        heuristic = build_heuristic(
            heuristic_name, rng_mod.stream(config.seed, "det", heuristic_name)
        )
        return run_trial(system, heuristic, build_filter_chain(variant))

    assert once() == once()
