"""Tests for trial-system construction (repro.sim.system)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_trial_system
from tests.conftest import tiny_config


class TestBuildTrialSystem:
    def test_budget_formula(self, tiny_system):
        # zeta_max = budget_mult * t_avg * p_avg * num_tasks (Section VI).
        expected = (
            tiny_system.config.energy.budget_mult
            * tiny_system.t_avg
            * tiny_system.p_avg
            * tiny_system.num_tasks
        )
        assert tiny_system.budget == pytest.approx(expected)

    def test_p_avg_is_eq8(self, tiny_system):
        assert tiny_system.p_avg == pytest.approx(tiny_system.cluster.power_table().mean())

    def test_exec_luck_shape_and_range(self, tiny_system):
        luck = tiny_system.exec_luck
        assert luck.shape == (tiny_system.num_tasks,)
        assert np.all((luck >= 0.0) & (luck < 1.0))

    def test_exec_luck_readonly(self, tiny_system):
        with pytest.raises(ValueError):
            tiny_system.exec_luck[0] = 0.5

    def test_deterministic_under_seed(self):
        a = build_trial_system(tiny_config(seed=5))
        b = build_trial_system(tiny_config(seed=5))
        assert np.array_equal(a.exec_luck, b.exec_luck)
        assert a.workload.tasks == b.workload.tasks
        assert np.allclose(a.cluster.power_table(), b.cluster.power_table())
        assert np.allclose(a.etc.means, b.etc.means)

    def test_seed_varies_everything(self):
        a = build_trial_system(tiny_config(seed=1))
        b = build_trial_system(tiny_config(seed=2))
        assert not np.array_equal(a.exec_luck, b.exec_luck)
        assert a.workload.tasks != b.workload.tasks
        assert not np.allclose(a.etc.means, b.etc.means)

    def test_streams_are_independent(self):
        # Changing only the cluster config must not change the ETC draw.
        cfg_a = tiny_config(seed=9)
        cfg_b = tiny_config(seed=9).with_updates(cluster={"min_cores": 2, "max_cores": 2})
        a = build_trial_system(cfg_a)
        b = build_trial_system(cfg_b)
        assert np.allclose(a.etc.means, b.etc.means)
        assert np.array_equal(a.exec_luck, b.exec_luck)

    def test_table_matches_workload_scale(self, tiny_system):
        cfg = tiny_system.config.workload
        assert tiny_system.table.eet.shape == (
            cfg.num_task_types,
            tiny_system.cluster.num_nodes,
            tiny_system.cluster.num_pstates,
        )

    def test_t_avg_consistency(self, tiny_system):
        assert tiny_system.t_avg == pytest.approx(tiny_system.table.t_avg())
