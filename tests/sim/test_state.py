"""Tests for per-core runtime state (repro.sim.state)."""

from __future__ import annotations

import pytest

from repro.robustness.completion import running_completion_pmf
from repro.sim.state import CoreState, QueuedTask, RunningTask
from repro.stoch.ops import convolve
from repro.stoch.pmf import PMF
from repro.workload.task import Task


def ex(start: float = 10.0) -> PMF:
    return PMF(start, 1.0, [0.25, 0.5, 0.25])


def task(i: int = 0) -> Task:
    return Task(i, 0, 0.0, 1000.0)


def running(start_time: float = 0.0) -> RunningTask:
    return RunningTask(
        task=task(0),
        pstate=1,
        exec_pmf=ex(),
        start_time=start_time,
        completion_time=start_time + 11.0,
    )


def queued(i: int) -> QueuedTask:
    return QueuedTask(task=task(i), pstate=2, exec_pmf=ex())


class TestOccupancy:
    def test_idle_initially(self):
        core = CoreState(0, 0, dt=1.0)
        assert core.is_idle
        assert core.assigned_count == 0

    def test_counts_running_and_queue(self):
        core = CoreState(0, 0, dt=1.0)
        core.set_running(running())
        core.enqueue(queued(1))
        core.enqueue(queued(2))
        assert core.assigned_count == 3
        assert not core.is_idle


class TestMutationRules:
    def test_enqueue_on_idle_rejected(self):
        core = CoreState(0, 0, dt=1.0)
        with pytest.raises(RuntimeError):
            core.enqueue(queued(1))

    def test_double_running_rejected(self):
        core = CoreState(0, 0, dt=1.0)
        core.set_running(running())
        with pytest.raises(RuntimeError):
            core.set_running(running())

    def test_clear_idle_rejected(self):
        core = CoreState(0, 0, dt=1.0)
        with pytest.raises(RuntimeError):
            core.clear_running()

    def test_fifo_pop_order(self):
        core = CoreState(0, 0, dt=1.0)
        core.set_running(running())
        core.enqueue(queued(1))
        core.enqueue(queued(2))
        assert core.pop_next().task.task_id == 1
        assert core.pop_next().task.task_id == 2
        assert core.pop_next() is None

    def test_remove_queued(self):
        core = CoreState(0, 0, dt=1.0)
        core.set_running(running())
        core.enqueue(queued(1))
        core.enqueue(queued(2))
        removed = core.remove_queued(1)
        assert removed is not None and removed.task.task_id == 1
        assert core.assigned_count == 2
        assert core.remove_queued(99) is None


class TestReadyPMF:
    def test_idle_ready_now(self):
        core = CoreState(0, 0, dt=1.0)
        out = core.ready_pmf(33.0)
        assert len(out) == 1 and out.mean() == pytest.approx(33.0)

    def test_running_only_matches_reference(self):
        core = CoreState(0, 0, dt=1.0)
        core.set_running(running(start_time=5.0))
        out = core.ready_pmf(t_now=6.0)
        expected = running_completion_pmf(ex(), 5.0, 6.0)
        assert out == expected

    def test_running_plus_queue_matches_reference(self):
        core = CoreState(0, 0, dt=1.0)
        core.set_running(running(start_time=0.0))
        core.enqueue(queued(1))
        core.enqueue(queued(2))
        out = core.ready_pmf(t_now=0.0)
        expected = convolve(
            convolve(running_completion_pmf(ex(), 0.0, 0.0), ex()), ex()
        )
        assert out == expected

    def test_cache_returns_same_object_when_valid(self):
        core = CoreState(0, 0, dt=1.0)
        core.set_running(running(start_time=0.0))
        a = core.ready_pmf(1.0)
        b = core.ready_pmf(2.0)  # still before first impulse at 10
        assert a is b

    def test_cache_invalidated_by_time_advance_past_impulses(self):
        core = CoreState(0, 0, dt=1.0)
        core.set_running(running(start_time=0.0))
        a = core.ready_pmf(1.0)
        b = core.ready_pmf(10.5)  # truncates the impulse at 10
        assert a is not b
        assert b == running_completion_pmf(ex(), 0.0, 10.5)

    def test_cache_invalidated_by_enqueue(self):
        core = CoreState(0, 0, dt=1.0)
        core.set_running(running(start_time=0.0))
        a = core.ready_pmf(1.0)
        core.enqueue(queued(1))
        b = core.ready_pmf(1.0)
        assert a is not b
        assert b.mean() == pytest.approx(a.mean() + ex().mean())

    def test_cache_consistency_after_pop(self):
        core = CoreState(0, 0, dt=1.0)
        core.set_running(running(start_time=0.0))
        core.enqueue(queued(1))
        core.enqueue(queued(2))
        _ = core.ready_pmf(1.0)
        core.pop_next()
        out = core.ready_pmf(1.0)
        expected = convolve(running_completion_pmf(ex(), 0.0, 1.0), ex())
        assert out == expected

    def test_ready_never_in_past(self):
        core = CoreState(0, 0, dt=1.0)
        core.set_running(running(start_time=0.0))
        out = core.ready_pmf(t_now=500.0)  # far past all impulses
        assert out.start >= 500.0 - 1e-9
