"""Tests for configuration dataclasses (repro.config)."""

from __future__ import annotations

import pytest

from repro.config import (
    ClusterConfig,
    EnergyConfig,
    FilterConfig,
    GridConfig,
    IdlePowerMode,
    LambdaMode,
    SimulationConfig,
    WorkloadConfig,
)


class TestGridConfig:
    def test_defaults_valid(self):
        cfg = GridConfig()
        assert cfg.dt > 0 and cfg.tail_sigmas > 0

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            GridConfig(dt=0.0)

    def test_rejects_nonpositive_tail(self):
        with pytest.raises(ValueError):
            GridConfig(tail_sigmas=-1.0)


class TestClusterConfig:
    def test_paper_defaults(self):
        cfg = ClusterConfig()
        assert cfg.num_nodes == 8
        assert cfg.num_pstates == 5
        assert cfg.min_speed_ratio == pytest.approx(0.42)
        assert (cfg.p0_power_low, cfg.p0_power_high) == (125.0, 135.0)
        assert (cfg.efficiency_min, cfg.efficiency_max) == (0.90, 0.98)

    def test_rejects_bad_processor_range(self):
        with pytest.raises(ValueError):
            ClusterConfig(min_processors=3, max_processors=2)

    def test_rejects_single_pstate(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_pstates=1)

    def test_rejects_perf_step_below_one(self):
        with pytest.raises(ValueError):
            ClusterConfig(perf_step_low=0.9)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            ClusterConfig(efficiency_min=0.0)


class TestWorkloadConfig:
    def test_paper_defaults(self):
        cfg = WorkloadConfig()
        assert cfg.num_tasks == 1000
        assert cfg.num_task_types == 100
        assert cfg.mu_task == 750.0
        assert cfg.v_task == cfg.v_mach == 0.25
        assert cfg.burst_head == cfg.burst_tail == 200
        assert cfg.lull_tasks == 600

    def test_paper_rate_ratios(self):
        cfg = WorkloadConfig()
        # lambda_fast / lambda_eq = (1/8) / (1/28); slow = (1/48) / (1/28).
        assert cfg.fast_ratio == pytest.approx(3.5)
        assert cfg.slow_ratio == pytest.approx((1 / 48) / (1 / 28))

    def test_rejects_oversized_bursts(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_tasks=300, burst_head=200, burst_tail=200)

    def test_with_num_tasks_scales_bursts(self):
        scaled = WorkloadConfig().with_num_tasks(500)
        assert scaled.num_tasks == 500
        assert scaled.burst_head == 100
        assert scaled.burst_tail == 100
        assert scaled.lull_tasks == 300

    def test_with_num_tasks_tiny(self):
        scaled = WorkloadConfig().with_num_tasks(3)
        assert scaled.num_tasks == 3
        assert scaled.burst_head + scaled.burst_tail <= 3

    def test_with_num_tasks_rejects_zero(self):
        with pytest.raises(ValueError):
            WorkloadConfig().with_num_tasks(0)

    def test_rejects_bad_ratios(self):
        with pytest.raises(ValueError):
            WorkloadConfig(fast_ratio=0.5)


class TestFilterConfig:
    def test_paper_defaults(self):
        cfg = FilterConfig()
        assert cfg.rho_thresh == 0.5
        assert (cfg.zeta_mul_low, cfg.zeta_mul_mid, cfg.zeta_mul_high) == (0.8, 1.0, 1.2)

    def test_zeta_mul_low_depth(self):
        assert FilterConfig().zeta_mul(0.3) == 0.8

    def test_zeta_mul_boundary_low(self):
        # Depth exactly 0.8 falls in the middle band (paper: "0.8 to 1.0").
        assert FilterConfig().zeta_mul(0.8) == 1.0

    def test_zeta_mul_mid_band(self):
        assert FilterConfig().zeta_mul(1.1) == 1.0

    def test_zeta_mul_high_depth(self):
        assert FilterConfig().zeta_mul(2.5) == 1.2

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            FilterConfig(rho_thresh=1.5)

    def test_rejects_unordered_depths(self):
        with pytest.raises(ValueError):
            FilterConfig(depth_low=2.0, depth_high=1.0)


class TestEnergyConfig:
    def test_default_is_p4_floor(self):
        assert EnergyConfig().idle_power_mode is IdlePowerMode.P4_FLOOR

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            EnergyConfig(budget_mult=0.0)


class TestSimulationConfig:
    def test_with_seed(self):
        cfg = SimulationConfig(seed=1).with_seed(9)
        assert cfg.seed == 9

    def test_with_updates_replaces_section_fields(self):
        cfg = SimulationConfig().with_updates(workload={"num_tasks": 700, "burst_head": 100})
        assert cfg.workload.num_tasks == 700
        assert cfg.workload.burst_head == 100
        # untouched fields keep defaults
        assert cfg.workload.mu_task == 750.0

    def test_with_updates_rejects_seed(self):
        with pytest.raises(ValueError):
            SimulationConfig().with_updates(seed={"x": 1})

    def test_with_updates_unknown_field_raises(self):
        with pytest.raises(TypeError):
            SimulationConfig().with_updates(workload={"nope": 1})

    def test_frozen(self):
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            SimulationConfig().seed = 5  # type: ignore[misc]

    def test_lambda_mode_enum(self):
        assert WorkloadConfig().lambda_mode is LambdaMode.DERIVED
