"""Tests for the energy ledger (repro.cluster.energy, Eqs. 1 and 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import ClusterSpec
from repro.cluster.energy import IDLE_PSTATE, EnergyLedger
from repro.cluster.node import NodeSpec
from repro.cluster.processor import ProcessorSpec
from repro.cluster.pstate import PStateProfile
from repro.config import IdlePowerMode


def one_core_cluster(eff: float = 1.0) -> ClusterSpec:
    profile = PStateProfile(
        speed=np.array([1.0, 0.5]),
        power=np.array([100.0, 40.0]),
    )
    return ClusterSpec(
        (NodeSpec(0, (ProcessorSpec(1),), profile, efficiency=eff),)
    )


def two_node_cluster() -> ClusterSpec:
    p = lambda hi: PStateProfile(np.array([1.0, 0.5]), np.array([hi, hi * 0.4]))
    return ClusterSpec(
        (
            NodeSpec(0, (ProcessorSpec(2),), p(100.0), efficiency=0.5),
            NodeSpec(1, (ProcessorSpec(1),), p(80.0), efficiency=1.0),
        )
    )


class TestEq1CoreEnergy:
    def test_single_execution_interval(self):
        ledger = EnergyLedger(one_core_cluster(), IdlePowerMode.EXCLUDED)
        ledger.record(0, 10.0, 0)  # P0 for 5s at 100 W
        ledger.record(0, 15.0, IDLE_PSTATE)
        ledger.close(20.0)
        assert ledger.core_energy(0) == pytest.approx(500.0)

    def test_multiple_pstates(self):
        ledger = EnergyLedger(one_core_cluster(), IdlePowerMode.EXCLUDED)
        ledger.record(0, 0.0, 0)  # 100 W x 2s
        ledger.record(0, 2.0, 1)  # 40 W x 3s
        ledger.record(0, 5.0, IDLE_PSTATE)
        ledger.close(10.0)
        assert ledger.core_energy(0) == pytest.approx(200.0 + 120.0)

    def test_idle_floor_counts_deepest_power(self):
        ledger = EnergyLedger(one_core_cluster(), IdlePowerMode.P4_FLOOR)
        ledger.close(10.0)  # idle 0..10 at 40 W (deepest state)
        assert ledger.core_energy(0) == pytest.approx(400.0)

    def test_idle_excluded_is_free(self):
        ledger = EnergyLedger(one_core_cluster(), IdlePowerMode.EXCLUDED)
        ledger.close(10.0)
        assert ledger.core_energy(0) == 0.0

    def test_initial_transition_is_idle_at_zero(self):
        ledger = EnergyLedger(one_core_cluster())
        trail = ledger.transitions(0)
        assert trail[0].time == 0.0
        assert trail[0].pstate == IDLE_PSTATE


class TestEq2TotalEnergy:
    def test_efficiency_division(self):
        ledger = EnergyLedger(one_core_cluster(eff=0.5), IdlePowerMode.EXCLUDED)
        ledger.record(0, 0.0, 0)
        ledger.record(0, 1.0, IDLE_PSTATE)
        ledger.close(1.0)
        # 100 J supplied / 0.5 efficiency = 200 J consumed.
        assert ledger.total_energy() == pytest.approx(200.0)

    def test_sums_across_cores(self):
        ledger = EnergyLedger(two_node_cluster(), IdlePowerMode.EXCLUDED)
        ledger.record(0, 0.0, 0)  # node0: 100 W / 0.5
        ledger.record(0, 1.0, IDLE_PSTATE)
        ledger.record(2, 0.0, 1)  # node1: 32 W / 1.0
        ledger.record(2, 2.0, IDLE_PSTATE)
        ledger.close(2.0)
        assert ledger.total_energy() == pytest.approx(100.0 / 0.5 + 32.0 * 2.0)


class TestRecordingRules:
    def test_rejects_nonmonotonic_times(self):
        ledger = EnergyLedger(one_core_cluster())
        ledger.record(0, 5.0, 0)
        with pytest.raises(ValueError):
            ledger.record(0, 4.0, 1)

    def test_same_time_replaces(self):
        ledger = EnergyLedger(one_core_cluster(), IdlePowerMode.EXCLUDED)
        ledger.record(0, 5.0, 0)
        ledger.record(0, 5.0, 1)
        ledger.record(0, 7.0, IDLE_PSTATE)
        ledger.close(7.0)
        # 2s at P1 (40 W), not P0.
        assert ledger.core_energy(0) == pytest.approx(80.0)

    def test_same_state_is_coalesced(self):
        ledger = EnergyLedger(one_core_cluster())
        ledger.record(0, 1.0, 0)
        ledger.record(0, 2.0, 0)
        assert len(ledger.transitions(0)) == 2  # initial idle + one P0

    def test_rejects_invalid_pstate(self):
        ledger = EnergyLedger(one_core_cluster())
        with pytest.raises(ValueError):
            ledger.record(0, 1.0, 9)

    def test_rejects_records_after_close(self):
        ledger = EnergyLedger(one_core_cluster())
        ledger.close(1.0)
        with pytest.raises(RuntimeError):
            ledger.record(0, 2.0, 0)

    def test_double_close_rejected(self):
        ledger = EnergyLedger(one_core_cluster())
        ledger.close(1.0)
        with pytest.raises(RuntimeError):
            ledger.close(2.0)

    def test_close_appends_final_idle(self):
        ledger = EnergyLedger(one_core_cluster())
        ledger.record(0, 1.0, 0)
        ledger.close(5.0)
        trail = ledger.transitions(0)
        assert trail[-1].time == 5.0
        assert trail[-1].pstate == IDLE_PSTATE


class TestExhaustion:
    def test_never_exhausted(self):
        ledger = EnergyLedger(one_core_cluster(), IdlePowerMode.EXCLUDED)
        ledger.record(0, 0.0, 1)  # 40 W
        ledger.record(0, 1.0, IDLE_PSTATE)
        ledger.close(1.0)
        assert ledger.exhaustion_time(1e9) == float("inf")

    def test_crossing_inside_interval(self):
        ledger = EnergyLedger(one_core_cluster(), IdlePowerMode.EXCLUDED)
        ledger.record(0, 0.0, 0)  # 100 W from t=0
        ledger.record(0, 10.0, IDLE_PSTATE)
        ledger.close(10.0)
        # 250 J at 100 W -> t = 2.5
        assert ledger.exhaustion_time(250.0) == pytest.approx(2.5)

    def test_crossing_in_second_interval(self):
        ledger = EnergyLedger(one_core_cluster(), IdlePowerMode.EXCLUDED)
        ledger.record(0, 0.0, 0)  # 100 W x 2s = 200 J
        ledger.record(0, 2.0, 1)  # 40 W onward
        ledger.record(0, 12.0, IDLE_PSTATE)
        ledger.close(12.0)
        # Need 80 J more at 40 W -> t = 2 + 2 = 4.
        assert ledger.exhaustion_time(280.0) == pytest.approx(4.0)

    def test_open_ended_rate_extrapolates(self):
        ledger = EnergyLedger(one_core_cluster(), IdlePowerMode.P4_FLOOR)
        # Never closed: idle floor of 40 W burns forever.
        assert ledger.exhaustion_time(400.0) == pytest.approx(10.0)

    def test_rejects_negative_budget(self):
        ledger = EnergyLedger(one_core_cluster())
        with pytest.raises(ValueError):
            ledger.exhaustion_time(-1.0)

    def test_efficiency_affects_consumed_crossing(self):
        ledger = EnergyLedger(one_core_cluster(eff=0.5), IdlePowerMode.EXCLUDED)
        ledger.record(0, 0.0, 0)  # consumed rate 200 W
        ledger.record(0, 10.0, IDLE_PSTATE)
        ledger.close(10.0)
        assert ledger.exhaustion_time(400.0) == pytest.approx(2.0)


class TestCumulativeEnergy:
    def test_matches_total_at_end(self):
        ledger = EnergyLedger(one_core_cluster(), IdlePowerMode.P4_FLOOR)
        ledger.record(0, 1.0, 0)
        ledger.record(0, 4.0, IDLE_PSTATE)
        ledger.close(10.0)
        assert ledger.cumulative_energy_at(10.0) == pytest.approx(ledger.total_energy())

    def test_zero_at_start(self):
        ledger = EnergyLedger(one_core_cluster(), IdlePowerMode.P4_FLOOR)
        ledger.close(10.0)
        assert ledger.cumulative_energy_at(0.0) == pytest.approx(0.0)

    def test_midpoint(self):
        ledger = EnergyLedger(one_core_cluster(), IdlePowerMode.EXCLUDED)
        ledger.record(0, 0.0, 0)  # 100 W
        ledger.record(0, 10.0, IDLE_PSTATE)
        ledger.close(10.0)
        assert ledger.cumulative_energy_at(4.0) == pytest.approx(400.0)

    def test_monotone_nondecreasing(self):
        ledger = EnergyLedger(one_core_cluster(), IdlePowerMode.P4_FLOOR)
        ledger.record(0, 2.0, 0)
        ledger.record(0, 6.0, IDLE_PSTATE)
        ledger.close(9.0)
        values = [ledger.cumulative_energy_at(t) for t in np.linspace(0, 9, 19)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_consistent_with_exhaustion(self):
        ledger = EnergyLedger(one_core_cluster(), IdlePowerMode.P4_FLOOR)
        ledger.record(0, 1.0, 0)
        ledger.record(0, 5.0, IDLE_PSTATE)
        ledger.close(20.0)
        budget = 0.6 * ledger.total_energy()
        t_star = ledger.exhaustion_time(budget)
        assert ledger.cumulative_energy_at(t_star) == pytest.approx(budget, rel=1e-9)
