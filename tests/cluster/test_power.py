"""Tests for the CMOS power model (repro.cluster.power)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.power import (
    activity_capacitance_constant,
    cmos_power,
    interpolate_voltages,
)


class TestCmosPower:
    def test_formula(self):
        # P = A*C_L * V^2 * f  (paper Eq. 7)
        assert cmos_power(2.0, 3.0, 4.0) == pytest.approx(2.0 * 9.0 * 4.0)

    def test_quadratic_in_voltage(self):
        assert cmos_power(1.0, 2.0, 1.0) == pytest.approx(4.0 * cmos_power(1.0, 1.0, 1.0))

    def test_linear_in_frequency(self):
        assert cmos_power(1.0, 1.0, 3.0) == pytest.approx(3.0 * cmos_power(1.0, 1.0, 1.0))

    def test_vectorized(self):
        v = np.array([1.0, 2.0])
        f = np.array([1.0, 0.5])
        out = cmos_power(10.0, v, f)
        assert np.allclose(out, [10.0, 20.0])


class TestActCapConstant:
    def test_round_trip(self):
        act_cap = activity_capacitance_constant(130.0, 1.5, 1.0)
        assert cmos_power(act_cap, 1.5, 1.0) == pytest.approx(130.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            activity_capacitance_constant(0.0, 1.5, 1.0)


class TestInterpolateVoltages:
    def test_endpoints(self):
        v = interpolate_voltages(1.5, 1.0, 5)
        assert v[0] == pytest.approx(1.5)
        assert v[-1] == pytest.approx(1.0)

    def test_linear_spacing(self):
        v = interpolate_voltages(1.5, 1.1, 5)
        assert np.allclose(np.diff(v), -0.1)

    def test_monotone_decreasing(self):
        v = interpolate_voltages(1.55, 1.0, 7)
        assert np.all(np.diff(v) < 0)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            interpolate_voltages(1.0, 1.5, 5)

    def test_rejects_single_state(self):
        with pytest.raises(ValueError):
            interpolate_voltages(1.5, 1.0, 1)

    def test_paper_power_ratio(self):
        # Low P-state should land near 25% of the high P-state's power
        # with paper-typical voltages and ~0.48 relative frequency.
        v = interpolate_voltages(1.475, 1.075, 5)
        speeds = np.array([1.0, 0.833, 0.694, 0.579, 0.482])
        powers = cmos_power(1.0, v, speeds)
        ratio = powers[-1] / powers[0]
        assert 0.15 < ratio < 0.4
