"""Tests for random cluster generation (repro.cluster.generator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.generator import generate_cluster, generate_pstate_profile
from repro.config import ClusterConfig


@pytest.fixture(scope="module")
def clusters():
    cfg = ClusterConfig()
    return [generate_cluster(cfg, np.random.default_rng(seed)) for seed in range(12)]


class TestProfileGeneration:
    def test_speed_bounds(self, rng):
        cfg = ClusterConfig()
        for _ in range(30):
            prof = generate_pstate_profile(cfg, rng)
            # Each step improves performance by 15-25%.
            ratios = prof.speed[:-1] / prof.speed[1:]
            assert np.all(ratios >= cfg.perf_step_low - 1e-12)
            assert np.all(ratios <= cfg.perf_step_high + 1e-12)

    def test_min_speed_ratio_respected(self, rng):
        cfg = ClusterConfig()
        for _ in range(50):
            prof = generate_pstate_profile(cfg, rng)
            assert prof.min_speed_ratio() >= cfg.min_speed_ratio

    def test_p0_power_in_range(self, rng):
        cfg = ClusterConfig()
        for _ in range(30):
            prof = generate_pstate_profile(cfg, rng)
            assert cfg.p0_power_low <= prof.power[0] <= cfg.p0_power_high

    def test_low_pstate_power_near_quarter(self, rng):
        # Paper: "power consumption for the low P-state of about 25% that
        # in the high P-state".
        cfg = ClusterConfig()
        ratios = [
            generate_pstate_profile(cfg, rng).power[-1]
            / generate_pstate_profile(cfg, rng).power[0]
            for _ in range(40)
        ]
        assert 0.1 < float(np.median(ratios)) < 0.45

    def test_power_strictly_decreasing(self, rng):
        prof = generate_pstate_profile(ClusterConfig(), rng)
        assert np.all(np.diff(prof.power) < 0)


class TestClusterGeneration:
    def test_node_count(self, clusters):
        assert all(c.num_nodes == 8 for c in clusters)

    def test_processor_and_core_ranges(self, clusters):
        for cluster in clusters:
            for node in cluster.nodes:
                assert 1 <= node.num_processors <= 4
                assert 1 <= node.cores_per_processor <= 4

    def test_efficiency_range(self, clusters):
        for cluster in clusters:
            eff = cluster.efficiency_vector()
            assert np.all(eff >= 0.90) and np.all(eff <= 0.98)

    def test_deterministic_under_seed(self):
        cfg = ClusterConfig()
        a = generate_cluster(cfg, np.random.default_rng(7))
        b = generate_cluster(cfg, np.random.default_rng(7))
        assert a.num_cores == b.num_cores
        assert np.allclose(a.power_table(), b.power_table())
        assert np.allclose(a.efficiency_vector(), b.efficiency_vector())

    def test_different_seeds_differ(self):
        cfg = ClusterConfig()
        a = generate_cluster(cfg, np.random.default_rng(1))
        b = generate_cluster(cfg, np.random.default_rng(2))
        assert not np.allclose(a.power_table(), b.power_table())

    def test_heterogeneous_across_nodes(self, clusters):
        # Power profiles should differ between nodes of the same cluster.
        cluster = clusters[0]
        p0 = [n.pstates.power[0] for n in cluster.nodes]
        assert len(set(np.round(p0, 6))) > 1

    def test_expected_total_cores(self, clusters):
        # E[cores/node] = E[procs] * E[cores/proc] = 2.5 * 2.5 = 6.25;
        # so E[total] = 50 for 8 nodes.  Check the ensemble is in range.
        totals = [c.num_cores for c in clusters]
        assert 20 < float(np.mean(totals)) < 80

    def test_respects_custom_config(self, rng):
        cfg = ClusterConfig(num_nodes=3, min_processors=2, max_processors=2, min_cores=2, max_cores=2)
        cluster = generate_cluster(cfg, rng)
        assert cluster.num_nodes == 3
        assert cluster.num_cores == 12
