"""Tests for P-state profiles (repro.cluster.pstate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.pstate import PStateProfile


def profile() -> PStateProfile:
    return PStateProfile(
        speed=np.array([1.0, 0.8, 0.65, 0.55, 0.45]),
        power=np.array([130.0, 95.0, 70.0, 50.0, 33.0]),
    )


class TestValidation:
    def test_valid_profile(self):
        p = profile()
        assert p.num_pstates == 5
        assert p.deepest == 4

    def test_rejects_p0_speed_not_one(self):
        with pytest.raises(ValueError):
            PStateProfile(np.array([0.9, 0.5]), np.array([100.0, 50.0]))

    def test_rejects_nondecreasing_speed(self):
        with pytest.raises(ValueError):
            PStateProfile(np.array([1.0, 1.0]), np.array([100.0, 50.0]))

    def test_rejects_increasing_power(self):
        with pytest.raises(ValueError):
            PStateProfile(np.array([1.0, 0.5]), np.array([50.0, 100.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            PStateProfile(np.array([1.0, 0.5]), np.array([100.0, 50.0, 25.0]))

    def test_rejects_single_state(self):
        with pytest.raises(ValueError):
            PStateProfile(np.array([1.0]), np.array([100.0]))

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            PStateProfile(np.array([1.0, 0.5]), np.array([100.0, 0.0]))


class TestDerived:
    def test_exec_multiplier_is_inverse_speed(self):
        p = profile()
        assert np.allclose(p.exec_multiplier, 1.0 / p.speed)
        assert p.exec_multiplier[0] == pytest.approx(1.0)
        assert np.all(np.diff(p.exec_multiplier) > 0)

    def test_mean_power(self):
        p = profile()
        assert p.mean_power() == pytest.approx(np.mean([130.0, 95.0, 70.0, 50.0, 33.0]))

    def test_min_speed_ratio(self):
        assert profile().min_speed_ratio() == pytest.approx(0.45)

    def test_arrays_readonly(self):
        p = profile()
        with pytest.raises(ValueError):
            p.speed[0] = 2.0
