"""Tests for the node/processor/cluster hierarchy (repro.cluster)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import ClusterSpec
from repro.cluster.core import CoreAddress
from repro.cluster.node import NodeSpec
from repro.cluster.processor import ProcessorSpec
from repro.cluster.pstate import PStateProfile


def make_profile(p0: float = 130.0) -> PStateProfile:
    return PStateProfile(
        speed=np.array([1.0, 0.8, 0.65, 0.55, 0.45]),
        power=np.array([p0, p0 * 0.7, p0 * 0.5, p0 * 0.37, p0 * 0.25]),
    )


def make_cluster() -> ClusterSpec:
    """2 nodes: node 0 has 2x3 cores, node 1 has 1x2 cores."""
    nodes = (
        NodeSpec(
            index=0,
            processors=(ProcessorSpec(3), ProcessorSpec(3)),
            pstates=make_profile(130.0),
            efficiency=0.95,
        ),
        NodeSpec(
            index=1,
            processors=(ProcessorSpec(2),),
            pstates=make_profile(126.0),
            efficiency=0.91,
        ),
    )
    return ClusterSpec(nodes)


class TestProcessorSpec:
    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            ProcessorSpec(0)


class TestNodeSpec:
    def test_counts(self):
        node = make_cluster().nodes[0]
        assert node.num_processors == 2
        assert node.cores_per_processor == 3
        assert node.num_cores == 6

    def test_rejects_heterogeneous_processors(self):
        with pytest.raises(ValueError):
            NodeSpec(
                index=0,
                processors=(ProcessorSpec(2), ProcessorSpec(3)),
                pstates=make_profile(),
                efficiency=0.9,
            )

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            NodeSpec(0, (ProcessorSpec(1),), make_profile(), efficiency=1.5)

    def test_rejects_no_processors(self):
        with pytest.raises(ValueError):
            NodeSpec(0, (), make_profile(), efficiency=0.9)


class TestClusterSpec:
    def test_sizes(self):
        cluster = make_cluster()
        assert cluster.num_nodes == 2
        assert cluster.num_cores == 8
        assert cluster.num_pstates == 5

    def test_rejects_sparse_node_indices(self):
        node = NodeSpec(1, (ProcessorSpec(1),), make_profile(), efficiency=0.9)
        with pytest.raises(ValueError):
            ClusterSpec((node,))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ClusterSpec(())

    def test_addresses_depth_first(self):
        cluster = make_cluster()
        addrs = cluster.core_addresses
        assert addrs[0] == CoreAddress(0, 0, 0)
        assert addrs[2] == CoreAddress(0, 0, 2)
        assert addrs[3] == CoreAddress(0, 1, 0)
        assert addrs[6] == CoreAddress(1, 0, 0)
        assert addrs[7] == CoreAddress(1, 0, 1)

    def test_round_trip_address_and_id(self):
        cluster = make_cluster()
        for cid in range(cluster.num_cores):
            assert cluster.core_id_of(cluster.address_of(cid)) == cid

    def test_core_id_of_rejects_out_of_range(self):
        cluster = make_cluster()
        with pytest.raises(IndexError):
            cluster.core_id_of(CoreAddress(0, 0, 3))
        with pytest.raises(IndexError):
            cluster.core_id_of(CoreAddress(1, 1, 0))

    def test_core_node_index(self):
        cluster = make_cluster()
        assert np.array_equal(cluster.core_node_index, [0, 0, 0, 0, 0, 0, 1, 1])

    def test_node_of_core(self):
        cluster = make_cluster()
        assert cluster.node_of_core(7).index == 1

    def test_power_table_shape_and_values(self):
        cluster = make_cluster()
        table = cluster.power_table()
        assert table.shape == (2, 5)
        assert table[0, 0] == pytest.approx(130.0)
        assert table[1, 0] == pytest.approx(126.0)

    def test_exec_multiplier_table(self):
        table = make_cluster().exec_multiplier_table()
        assert table.shape == (2, 5)
        assert np.all(table[:, 0] == 1.0)
        assert np.all(np.diff(table, axis=1) > 0)

    def test_efficiency_vector(self):
        assert np.allclose(make_cluster().efficiency_vector(), [0.95, 0.91])

    def test_mean_power_is_eq8(self):
        cluster = make_cluster()
        expected = cluster.power_table().mean()
        assert cluster.mean_power() == pytest.approx(expected)

    def test_describe_mentions_every_node(self):
        text = make_cluster().describe()
        assert "node 0" in text and "node 1" in text

    def test_address_str(self):
        assert str(CoreAddress(1, 2, 3)) == "n1.p2.c3"

    def test_rejects_mismatched_pstate_counts(self):
        short_profile = PStateProfile(
            speed=np.array([1.0, 0.5]), power=np.array([100.0, 40.0])
        )
        nodes = (
            NodeSpec(0, (ProcessorSpec(1),), make_profile(), efficiency=0.9),
            NodeSpec(1, (ProcessorSpec(1),), short_profile, efficiency=0.9),
        )
        with pytest.raises(ValueError):
            ClusterSpec(nodes)
