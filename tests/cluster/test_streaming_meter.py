"""StreamingEnergyMeter vs EnergyLedger equivalence (repro.cluster.energy).

The meter is the O(num_cores) replacement for the ledger in service
mode: fed the same transition stream, its cumulative consumption must
match the ledger's everywhere the service loop queries it, and the
closed totals must agree exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import ClusterSpec
from repro.cluster.energy import IDLE_PSTATE, EnergyLedger, StreamingEnergyMeter
from repro.cluster.node import NodeSpec
from repro.cluster.processor import ProcessorSpec
from repro.cluster.pstate import PStateProfile
from repro.config import IdlePowerMode


def two_node_cluster() -> ClusterSpec:
    p = lambda hi: PStateProfile(np.array([1.0, 0.5]), np.array([hi, hi * 0.4]))
    return ClusterSpec(
        (
            NodeSpec(0, (ProcessorSpec(2),), p(100.0), efficiency=0.5),
            NodeSpec(1, (ProcessorSpec(1),), p(80.0), efficiency=1.0),
        )
    )


def both(mode=IdlePowerMode.P4_FLOOR):
    cluster = two_node_cluster()
    return EnergyLedger(cluster, mode), StreamingEnergyMeter(cluster, mode)


class TestAgainstLedger:
    @pytest.mark.parametrize("mode", [IdlePowerMode.P4_FLOOR, IdlePowerMode.EXCLUDED])
    def test_identical_transition_stream_identical_total(self, mode):
        ledger, meter = both(mode)
        script = [
            (0, 5.0, 0),
            (1, 7.0, 1),
            (0, 12.0, IDLE_PSTATE),
            (2, 14.0, 0),
            (1, 20.0, IDLE_PSTATE),
            (2, 31.0, IDLE_PSTATE),
        ]
        for core, t, pstate in script:
            ledger.record(core, t, pstate)
            meter.record(core, t, pstate)
        ledger.close(40.0)
        meter.close(40.0)
        assert meter.total_energy() == pytest.approx(ledger.total_energy(), rel=1e-12)

    def test_consumed_at_tracks_cumulative_energy(self):
        ledger, meter = both()
        script = [(0, 3.0, 0), (0, 9.0, IDLE_PSTATE), (1, 10.0, 1)]
        for core, t, pstate in script:
            ledger.record(core, t, pstate)
            meter.record(core, t, pstate)
        # Query at and after the latest transition (the meter's exactness
        # domain — exactly how the window accumulator uses it).
        probe_ledger = EnergyLedger(two_node_cluster(), IdlePowerMode.P4_FLOOR)
        for core, t, pstate in script:
            probe_ledger.record(core, t, pstate)
        probe_ledger.close(50.0)
        for t in (10.0, 12.5, 30.0, 50.0):
            assert meter.consumed_at(t) == pytest.approx(
                probe_ledger.cumulative_energy_at(t), rel=1e-12
            )

    @settings(max_examples=30)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        steps=st.integers(min_value=1, max_value=60),
    )
    def test_random_schedules_agree(self, seed, steps):
        rng = np.random.default_rng(seed)
        ledger, meter = both()
        t = 0.0
        busy = {0: False, 1: False, 2: False}
        for _ in range(steps):
            t += float(rng.exponential(4.0))
            core = int(rng.integers(0, 3))
            if busy[core]:
                pstate = IDLE_PSTATE
            else:
                pstate = int(rng.integers(0, 2))
            busy[core] = pstate != IDLE_PSTATE
            ledger.record(core, t, pstate)
            meter.record(core, t, pstate)
        end = t + float(rng.exponential(4.0))
        ledger.close(end)
        meter.close(end)
        assert meter.total_energy() == pytest.approx(ledger.total_energy(), rel=1e-9)


class TestMeterBehaviour:
    def test_total_requires_close(self):
        _, meter = both()
        with pytest.raises(RuntimeError):
            meter.total_energy()

    def test_rejects_time_reversal(self):
        _, meter = both()
        meter.record(0, 10.0, 0)
        with pytest.raises(ValueError):
            meter.record(0, 5.0, IDLE_PSTATE)

    def test_rejects_unknown_pstate(self):
        _, meter = both()
        with pytest.raises(ValueError):
            meter.record(0, 1.0, 99)

    def test_unwinds_the_last_interval(self):
        # consumed_at may be asked for a time just before the newest
        # transition (the event that crossed a window boundary): the
        # retained previous rate must unwind it exactly.
        ledger, meter = both()
        ledger.record(0, 2.0, 0)
        meter.record(0, 2.0, 0)
        ledger.record(0, 10.0, IDLE_PSTATE)
        meter.record(0, 10.0, IDLE_PSTATE)
        probe = EnergyLedger(two_node_cluster(), IdlePowerMode.P4_FLOOR)
        probe.record(0, 2.0, 0)
        probe.record(0, 10.0, IDLE_PSTATE)
        probe.close(10.0)
        assert meter.consumed_at(6.0) == pytest.approx(
            probe.cumulative_energy_at(6.0), rel=1e-12
        )
