"""Engine-level fault behavior: outages, orphan re-mapping, recovery.

The headline test is the acceptance demo: under one fault schedule, the
recovery machinery (resume-orphaning plus re-mapping through the normal
heuristic/filter stack) completes measurably more work than a
no-recovery run that just kills whatever an outage touches.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.faults import FaultEvent, FaultPolicy, FaultSchedule
from repro.obs.sinks import MetricsRegistry, RingBufferSink
from repro.service import ServiceConfig
from tests.conftest import tiny_config

#: One node down from t=800 for 3000 s — long enough to orphan both the
#: running task and queued work on the tiny 3-node system.
OUTAGE = FaultSchedule((FaultEvent("node_outage", 0, 800.0, 3000.0),))


@pytest.fixture(scope="module")
def scenario() -> api.Scenario:
    return api.Scenario("LL", "en+rob", config=tiny_config(seed=123))


@pytest.fixture(scope="module")
def system(scenario):
    return scenario.build_system()


def _replay(scenario, system, faults, policy):
    return api.run_service(
        scenario,
        ServiceConfig(traffic="replay", faults=faults, fault_policy=policy),
        system=system,
    )


class TestOutageSemantics:
    def test_outage_orphans_and_recovery_restores(self, scenario, system):
        svc = _replay(
            scenario, system, OUTAGE, FaultPolicy(running="resume", remap=True)
        )
        totals = svc.fault_totals
        assert totals["outages"] == 1
        assert totals["recoveries"] == 1
        assert totals["orphaned"] > 0
        assert totals["remapped"] + totals["lost"] >= totals["orphaned"] > 0
        # Window accounting matches the engine's counters.
        wt = svc.totals
        assert wt.orphaned == totals["orphaned"]
        assert wt.remapped == totals["remapped"]
        assert wt.lost == totals["lost"]

    def test_lost_policy_kills_running_tasks(self, scenario, system):
        svc = _replay(
            scenario, system, OUTAGE, FaultPolicy(running="lost", remap=True)
        )
        totals = svc.fault_totals
        # The running task dies outright instead of being orphaned, so
        # something is lost even with re-mapping on.
        assert totals["lost"] > 0
        assert svc.totals.completed < 60

    def test_fault_runs_are_deterministic(self, scenario, system):
        policy = FaultPolicy(running="resume", remap=True)
        first = _replay(scenario, system, OUTAGE, policy)
        second = _replay(scenario, system, OUTAGE, policy)
        assert first.fault_totals == second.fault_totals
        assert [w.to_dict() for w in first.windows] == [
            w.to_dict() for w in second.windows
        ]

    def test_core_outage_touches_one_core(self, scenario, system):
        schedule = FaultSchedule((FaultEvent("core_outage", 0, 800.0, 3000.0),))
        svc = _replay(
            scenario, system, schedule, FaultPolicy(running="resume", remap=True)
        )
        totals = svc.fault_totals
        assert totals["outages"] == 1
        # A single core strands at most its own queue; the other cores
        # absorb the re-maps and the service largely survives.
        assert svc.totals.completed >= 55

    def test_slowdown_degrades_without_orphaning(self, scenario, system):
        schedule = FaultSchedule(
            (FaultEvent("node_slowdown", 0, 500.0, 3000.0, pstate_floor=2),)
        )
        svc = _replay(
            scenario, system, schedule, FaultPolicy(running="resume", remap=True)
        )
        totals = svc.fault_totals
        assert totals["slowdowns"] == 1
        assert totals["outages"] == 0
        assert totals["orphaned"] == 0
        # Capacity was capped, not removed: everything still completes.
        assert svc.totals.completed + svc.totals.discarded == 60


class TestRecoveryDemo:
    """Acceptance: recovery machinery beats no-recovery under one schedule."""

    def test_remapping_recovers_completions(self, scenario, system):
        recovered = _replay(
            scenario, system, OUTAGE, FaultPolicy(running="resume", remap=True)
        )
        norecovery = _replay(
            scenario, system, OUTAGE, FaultPolicy(running="lost", remap=False)
        )
        assert recovered.fault_totals["remapped"] > 0
        assert norecovery.fault_totals["remapped"] == 0
        # Same outage, measurably more service retained.
        assert recovered.totals.completed > norecovery.totals.completed
        assert recovered.totals.on_time > norecovery.totals.on_time
        assert recovered.fault_totals["lost"] < norecovery.fault_totals["lost"]


class TestFaultObservability:
    def test_events_and_counters_stream_through_hooks(self, system):
        buffer = RingBufferSink(capacity=4096)
        metrics = MetricsRegistry()
        heuristic = api.build_heuristic("LL", None)
        chain = api.build_filter_chain("en+rob", system.config.filters)
        result = api.observe_trial(
            system,
            heuristic,
            chain,
            sinks=(buffer,),
            metrics=metrics,
            faults=OUTAGE,
            fault_policy=FaultPolicy(running="resume", remap=True),
        )
        kinds = [event.kind for event in buffer.events]
        assert kinds.count("fault_injected") == 2  # fail + recover
        assert "task_orphaned" in kinds
        counters = metrics.to_dict()["counters"]
        assert counters["faults.fail.node_outage"] == 1
        assert counters["faults.recover.node_outage"] == 1
        assert counters.get("tasks_orphaned.remapped", 0) > 0
        # The scored result is still internally consistent.
        assert result.missed + result.completed_within == result.num_tasks
