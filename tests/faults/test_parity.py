"""Zero-fault parity: an inert fault layer is bitwise invisible.

Acceptance criterion of the fault-model PR: running with an *empty*
:class:`FaultSchedule`, a default :class:`FaultPolicy` and an all-``None``
:class:`SheddingConfig` must reproduce the pre-fault baseline exactly —
per-task outcomes, trial digests, and service windows — so existing
studies and their manifests stay valid on a build that carries the fault
layer.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.faults import FaultPolicy, FaultSchedule, SheddingConfig
from repro.obs.manifest import trial_digest
from repro.service import ServiceConfig
from tests.conftest import tiny_config

SPECS = [("LL", "en+rob"), ("MECT", "none"), ("SQ", "en"), ("Random", "rob")]


@pytest.fixture(scope="module")
def system():
    return api.Scenario("LL", "en+rob", config=tiny_config(seed=123)).build_system()


class TestZeroFaultTrialParity:
    @pytest.mark.parametrize("heuristic,filters", SPECS)
    def test_empty_schedule_is_bitwise_identical(self, system, heuristic, filters):
        scenario = api.Scenario(heuristic, filters, config=tiny_config(seed=123))
        baseline = api.run_trial(scenario, system=system, keep_outcomes=True)
        inert = api.run_trial(
            scenario,
            system=system,
            keep_outcomes=True,
            faults=FaultSchedule.empty(),
            fault_policy=FaultPolicy(),
            shedding=SheddingConfig(),
        )
        # Dataclass equality covers every scalar and per-task outcome.
        assert inert == baseline
        assert trial_digest(inert) == trial_digest(baseline)

    def test_disabled_shedding_config_is_inert(self, system):
        scenario = api.Scenario("LL", "en+rob", config=tiny_config(seed=123))
        baseline = api.run_trial(scenario, system=system, keep_outcomes=True)
        shed_only = api.run_trial(
            scenario, system=system, keep_outcomes=True, shedding=SheddingConfig()
        )
        assert shed_only == baseline


class TestZeroFaultServiceParity:
    def test_replay_windows_and_score_are_identical(self, system):
        scenario = api.Scenario("LL", "en+rob", config=tiny_config(seed=123))
        baseline = api.run_service(scenario, system=system)
        inert = api.run_service(
            scenario,
            ServiceConfig(
                traffic="replay",
                faults=FaultSchedule.empty(),
                fault_policy=FaultPolicy(),
                shedding=SheddingConfig(),
            ),
            system=system,
        )
        assert inert.trial_result == baseline.trial_result
        assert trial_digest(inert.trial_result) == trial_digest(baseline.trial_result)
        assert [w.to_dict() for w in inert.windows] == [
            w.to_dict() for w in baseline.windows
        ]
        # The fault layer was *attached* (totals reported) but inert.
        assert inert.fault_totals is not None
        assert not any(inert.fault_totals.values())
        assert baseline.fault_totals is None

    def test_generative_stream_is_identical(self, system):
        scenario = api.Scenario("LL", "en+rob", config=tiny_config(seed=123))
        config = dict(traffic="poisson", task_limit=80)
        baseline = api.run_service(scenario, ServiceConfig(**config), system=system)
        inert = api.run_service(
            scenario,
            ServiceConfig(**config, faults=FaultSchedule.empty(), shedding=SheddingConfig()),
            system=system,
        )
        assert inert.makespan == baseline.makespan
        assert inert.total_energy == baseline.total_energy
        assert [w.to_dict() for w in inert.windows] == [
            w.to_dict() for w in baseline.windows
        ]

    def test_window_rows_carry_zero_fault_columns(self, system):
        # New columns exist (schema moved forward) but stay zero when
        # the fault layer is off — service_check's identity still holds.
        scenario = api.Scenario("LL", "en+rob", config=tiny_config(seed=123))
        baseline = api.run_service(scenario, system=system)
        for window in baseline.windows:
            row = window.to_dict()
            assert row["shed"] == row["deferred"] == 0
            assert row["orphaned"] == row["remapped"] == row["lost"] == 0
            assert row["arrivals"] == row["mapped"] + row["discarded"] + row["shed"]
