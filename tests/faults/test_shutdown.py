"""Graceful shutdown: the stop signal drains work and marks truncation."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.service import TRAILER_FORMAT, ServiceConfig, serve_system, write_windows_jsonl
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def scenario() -> api.Scenario:
    return api.Scenario("LL", "en+rob", config=tiny_config(seed=123))


@pytest.fixture(scope="module")
def system(scenario):
    return scenario.build_system()


def _stop_after(n: int):
    """A stop() callable that flips true after n polls (arrivals)."""
    state = {"polls": 0}

    def stop() -> bool:
        state["polls"] += 1
        return state["polls"] > n

    return stop


class TestGracefulStop:
    def test_stop_cuts_stream_and_drains(self, scenario, system):
        full = serve_system(
            system,
            scenario.spec,
            ServiceConfig(traffic="poisson", task_limit=500),
        )
        stopped = serve_system(
            system,
            scenario.spec,
            ServiceConfig(traffic="poisson", task_limit=500),
            stop=_stop_after(40),
        )
        assert not full.truncated
        assert stopped.truncated
        totals = stopped.totals
        # The stream was cut early but committed work drained: nothing
        # stays in flight and far fewer arrivals were admitted.
        assert totals.arrivals < full.totals.arrivals
        assert totals.in_system_end == 0
        assert totals.completed + totals.discarded == totals.arrivals

    def test_stop_never_polled_true_is_not_truncated(self, scenario, system):
        svc = serve_system(
            system,
            scenario.spec,
            ServiceConfig(traffic="poisson", task_limit=30),
            stop=lambda: False,
        )
        assert not svc.truncated

    def test_untriggered_stop_still_scores_replay(self, scenario, system):
        # The CLI always wires a stop probe for signal handling; a full
        # replay where it never fires must still score like the batch
        # path, bit for bit.
        baseline = serve_system(system, scenario.spec, ServiceConfig(traffic="replay"))
        guarded = serve_system(
            system, scenario.spec, ServiceConfig(traffic="replay"), stop=lambda: False
        )
        assert not guarded.truncated
        assert guarded.trial_result == baseline.trial_result

    def test_replay_with_stop_drops_batch_scoring(self, scenario, system):
        # A truncated replay saw a different stream than the batch run;
        # it must not claim batch equivalence.
        svc = serve_system(
            system,
            scenario.spec,
            ServiceConfig(traffic="replay"),
            stop=_stop_after(10),
        )
        assert svc.truncated
        assert svc.trial_result is None


class TestTruncationTrailer:
    def test_truncated_run_writes_trailer(self, scenario, system, tmp_path):
        stopped = serve_system(
            system,
            scenario.spec,
            ServiceConfig(traffic="poisson", task_limit=200),
            stop=_stop_after(25),
        )
        path = tmp_path / "windows.jsonl"
        count = write_windows_jsonl(stopped, path)
        lines = path.read_text().splitlines()
        # The returned count excludes the trailer line.
        assert len(lines) == count + 1
        trailer = json.loads(lines[-1])
        assert trailer["format"] == TRAILER_FORMAT
        assert trailer["truncated"] is True
        assert trailer["windows"] == count
        assert trailer["makespan"] == stopped.makespan
        for line in lines[:-1]:
            assert json.loads(line)["format"] == "repro.window/1"

    def test_clean_run_writes_no_trailer(self, scenario, system, tmp_path):
        svc = serve_system(
            system, scenario.spec, ServiceConfig(traffic="poisson", task_limit=30)
        )
        path = tmp_path / "windows.jsonl"
        count = write_windows_jsonl(svc, path)
        lines = path.read_text().splitlines()
        assert len(lines) == count
        assert all(json.loads(line)["format"] == "repro.window/1" for line in lines)
