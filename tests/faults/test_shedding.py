"""Admission-controller behavior: defer, shed, and the min-prob floor."""

from __future__ import annotations

import pytest

from repro import api
from repro.faults import (
    SHED_BUDGET,
    SHED_QUEUE_DEPTH,
    AdmissionController,
    FaultEvent,
    FaultPolicy,
    FaultSchedule,
    SheddingConfig,
)
from repro.service import ServiceConfig
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def scenario() -> api.Scenario:
    return api.Scenario("LL", "en+rob", config=tiny_config(seed=123))


@pytest.fixture(scope="module")
def system(scenario):
    return scenario.build_system()


class TestSheddingConfig:
    def test_all_none_is_disabled(self):
        assert not SheddingConfig().enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(queue_depth=-1.0),
            dict(budget_frac=1.5),
            dict(min_prob=-0.1),
            dict(queue_depth=1.0, defer=0.0),
            dict(queue_depth=1.0, max_defers=-1),
        ],
    )
    def test_invalid_thresholds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SheddingConfig(**kwargs)

    def test_any_threshold_enables(self):
        assert SheddingConfig(queue_depth=2.0).enabled
        assert SheddingConfig(budget_frac=0.1).enabled
        assert SheddingConfig(min_prob=0.5).enabled


class TestAdmissionController:
    def test_admits_below_thresholds(self):
        ctl = AdmissionController(SheddingConfig(queue_depth=2.0, budget_frac=0.25))
        assert ctl.admit(0, 1.5, 0.5) == ("admit", "")

    def test_sheds_on_queue_depth_without_defer(self):
        ctl = AdmissionController(SheddingConfig(queue_depth=2.0))
        assert ctl.admit(0, 2.5, None) == ("shed", SHED_QUEUE_DEPTH)

    def test_sheds_on_budget_level(self):
        ctl = AdmissionController(SheddingConfig(budget_frac=0.25))
        assert ctl.admit(0, 0.0, 0.1) == ("shed", SHED_BUDGET)
        # Unknown budget level (no rolling budget): check is skipped.
        assert ctl.admit(1, 0.0, None) == ("admit", "")

    def test_defers_then_sheds_after_max(self):
        ctl = AdmissionController(
            SheddingConfig(queue_depth=1.0, defer=10.0, max_defers=2)
        )
        assert ctl.admit(7, 5.0, None) == ("defer", SHED_QUEUE_DEPTH)
        assert ctl.admit(7, 5.0, None) == ("defer", SHED_QUEUE_DEPTH)
        assert ctl.admit(7, 5.0, None) == ("shed", SHED_QUEUE_DEPTH)

    def test_admission_settles_defer_tracking(self):
        ctl = AdmissionController(
            SheddingConfig(queue_depth=1.0, defer=10.0, max_defers=1)
        )
        assert ctl.admit(3, 5.0, None)[0] == "defer"
        assert ctl.admit(3, 0.0, None)[0] == "admit"
        # Admission forgets the task; a fresh overload gets a fresh defer.
        assert ctl.admit(3, 5.0, None)[0] == "defer"

    def test_min_prob_floor(self):
        ctl = AdmissionController(SheddingConfig(min_prob=0.4))
        assert ctl.below_prob_floor(0.39)
        assert not ctl.below_prob_floor(0.4)
        disabled = AdmissionController(SheddingConfig(queue_depth=1.0))
        assert not disabled.below_prob_floor(0.0)


class TestEngineShedding:
    """Shedding observed through continuous service under overload."""

    OUTAGE = FaultSchedule((FaultEvent("node_outage", 0, 500.0, 2500.0),))
    BASE = dict(traffic="poisson", rate_mult=2.5, task_limit=200)

    def _serve(self, scenario, system, shedding=None):
        return api.run_service(
            scenario,
            ServiceConfig(
                **self.BASE,
                faults=self.OUTAGE,
                fault_policy=FaultPolicy(running="resume", remap=True),
                shedding=shedding,
            ),
            system=system,
        )

    def test_queue_depth_shedding_protects_admitted_work(self, scenario, system):
        # The acceptance demo's shedding half: under 2.5x overload plus a
        # node outage, admitting everything makes a chunk of completions
        # late; the queue-depth shedder keeps admitted work on time.
        unprotected = self._serve(scenario, system)
        protected = self._serve(scenario, system, SheddingConfig(queue_depth=1.0))
        assert unprotected.totals.late > 0
        assert protected.totals.late == 0
        assert protected.fault_totals["shed"] > 0
        # Shed arrivals are accounted, not lost: the window identity holds.
        totals = protected.totals
        assert totals.arrivals == self.BASE["task_limit"]
        assert totals.arrivals == totals.mapped + totals.discarded + totals.shed

    def test_deferral_retries_instead_of_dropping(self, scenario, system):
        deferred = self._serve(
            scenario,
            system,
            SheddingConfig(queue_depth=1.0, defer=120.0, max_defers=10),
        )
        assert deferred.fault_totals["deferred"] > 0
        # A deferred arrival is not terminal: every arrival still ends
        # mapped, discarded, or shed for good.
        totals = deferred.totals
        assert totals.arrivals == totals.mapped + totals.discarded + totals.shed

    def test_min_prob_floor_sheds_hopeless_tasks(self, scenario, system):
        protected = self._serve(scenario, system, SheddingConfig(min_prob=0.95))
        assert protected.fault_totals["shed"] > 0

    def test_shedding_is_deterministic(self, scenario, system):
        first = self._serve(scenario, system, SheddingConfig(queue_depth=1.0))
        second = self._serve(scenario, system, SheddingConfig(queue_depth=1.0))
        assert [w.to_dict() for w in first.windows] == [
            w.to_dict() for w in second.windows
        ]
        assert first.fault_totals == second.fault_totals
