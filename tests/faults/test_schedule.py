"""Unit tests for the fault schedule layer (repro.faults data types)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.faults import (
    FAULTS_FORMAT,
    FaultEvent,
    FaultPolicy,
    FaultSchedule,
)
from repro.io.faults_io import load_faults, save_faults
from tests.conftest import tiny_config
from repro import build_trial_system


@pytest.fixture(scope="module")
def cluster():
    return build_trial_system(tiny_config(seed=123)).cluster


class TestFaultEvent:
    def test_end_is_start_plus_duration(self):
        event = FaultEvent("node_outage", 0, 10.0, 5.0)
        assert event.end == 15.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="meteor_strike", target=0, start=0.0, duration=1.0),
            dict(kind="node_outage", target=-1, start=0.0, duration=1.0),
            dict(kind="node_outage", target=0, start=-1.0, duration=1.0),
            dict(kind="node_outage", target=0, start=0.0, duration=0.0),
            dict(kind="node_outage", target=0, start=0.0, duration=float("inf")),
            dict(kind="node_outage", target=0, start=0.0, duration=1.0, pstate_floor=2),
            dict(kind="node_slowdown", target=0, start=0.0, duration=1.0, pstate_floor=-1),
        ],
    )
    def test_invalid_events_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultEvent(**kwargs)


class TestFaultPolicy:
    def test_defaults_remap_and_lose_running(self):
        policy = FaultPolicy()
        assert policy.running == "lost"
        assert policy.remap is True

    def test_unknown_running_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(running="teleport")


class TestGenerate:
    def test_same_seed_same_schedule(self):
        kwargs = dict(num_targets=3, horizon=1e4, mtbf=2e3, mttr=500.0, seed=7)
        assert FaultSchedule.generate(**kwargs) == FaultSchedule.generate(**kwargs)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        mtbf=st.floats(min_value=100.0, max_value=1e5),
        mttr=st.floats(min_value=10.0, max_value=1e4),
        scope=st.sampled_from(["node", "core", "slowdown"]),
    )
    def test_generation_is_a_pure_function_of_its_inputs(self, seed, mtbf, mttr, scope):
        kwargs = dict(
            num_targets=2,
            horizon=5e4,
            mtbf=mtbf,
            mttr=mttr,
            seed=seed,
            scope=scope,
            pstate_floor=1 if scope == "slowdown" else 0,
        )
        first = FaultSchedule.generate(**kwargs)
        second = FaultSchedule.generate(**kwargs)
        assert first == second
        for event in first.events:
            assert event.start < 5e4
            assert event.duration > 0.0

    def test_adding_targets_preserves_existing_streams(self):
        # Per-target rng sub-streams: target k's episodes are identical
        # whether or not more targets exist.
        kwargs = dict(horizon=1e4, mtbf=1e3, mttr=200.0, seed=11)
        small = FaultSchedule.generate(num_targets=2, **kwargs)
        large = FaultSchedule.generate(num_targets=4, **kwargs)
        kept = tuple(e for e in large.events if e.target < 2)
        assert kept == small.events

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError, match="scope"):
            FaultSchedule.generate(
                num_targets=1, horizon=1.0, mtbf=1.0, mttr=1.0, seed=0, scope="rack"
            )


class TestTransitions:
    def test_times_are_ordered_and_balanced(self, cluster):
        schedule = FaultSchedule.generate(
            num_targets=cluster.num_nodes, horizon=2e4, mtbf=3e3, mttr=800.0, seed=5
        )
        transitions = schedule.transitions(cluster)
        assert len(transitions) == 2 * len(schedule.events)
        times = [t.time for t in transitions]
        assert times == sorted(times)
        fails = sum(1 for t in transitions if t.action == "fail")
        recovers = sum(1 for t in transitions if t.action == "recover")
        assert fails == recovers == len(schedule.events)

    def test_node_events_cover_all_node_cores(self, cluster):
        schedule = FaultSchedule((FaultEvent("node_outage", 1, 10.0, 5.0),))
        fail, recover = schedule.transitions(cluster)
        expected = tuple(
            core_id
            for core_id in range(cluster.num_cores)
            if cluster.core_node_index[core_id] == 1
        )
        assert fail.core_ids == expected
        assert recover.core_ids == expected
        assert fail.is_outage and recover.is_outage

    def test_core_event_targets_one_core(self, cluster):
        schedule = FaultSchedule((FaultEvent("core_outage", 3, 10.0, 5.0),))
        fail, _ = schedule.transitions(cluster)
        assert fail.core_ids == (3,)

    def test_out_of_range_target_rejected(self, cluster):
        schedule = FaultSchedule(
            (FaultEvent("node_outage", cluster.num_nodes, 1.0, 1.0),)
        )
        with pytest.raises(ValueError):
            schedule.transitions(cluster)

    def test_recovery_sorts_before_failure_at_same_instant(self, cluster):
        schedule = FaultSchedule(
            (
                FaultEvent("node_outage", 0, 0.0, 10.0),
                FaultEvent("node_outage", 1, 10.0, 5.0),
            )
        )
        transitions = schedule.transitions(cluster)
        at_ten = [t.action for t in transitions if t.time == 10.0]
        assert at_ten == ["recover", "fail"]

    def test_empty_schedule_compiles_to_nothing(self, cluster):
        assert FaultSchedule.empty().transitions(cluster) == ()
        assert not FaultSchedule.empty()
        assert len(FaultSchedule.empty()) == 0


class TestRoundTrip:
    def test_dict_round_trip(self):
        schedule = FaultSchedule.generate(
            num_targets=2, horizon=1e4, mtbf=1e3, mttr=300.0, seed=3, scope="slowdown",
            pstate_floor=2,
        )
        data = schedule.to_dict()
        assert data["format"] == FAULTS_FORMAT
        assert FaultSchedule.from_dict(data) == schedule

    def test_bad_format_tag_rejected(self):
        with pytest.raises(ValueError, match="format"):
            FaultSchedule.from_dict({"format": "repro.faults/999", "events": []})

    def test_file_round_trip(self, tmp_path):
        schedule = FaultSchedule.generate(
            num_targets=3, horizon=5e3, mtbf=800.0, mttr=100.0, seed=9
        )
        path = save_faults(schedule, tmp_path / "faults.json")
        assert load_faults(path) == schedule
