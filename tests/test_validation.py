"""Tests for post-run validation (repro.validation)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.extensions.cancellation import AbandonHopelessPolicy
from repro.extensions.rescheduling import WorkStealingPolicy
from repro.filters.chain import build_filter_chain
from repro.heuristics.lightest_load import LightestLoad
from repro.heuristics.mect import MinimumExpectedCompletionTime
from repro.sim.engine import Engine
from repro.sim.results import TaskOutcome
from repro.validation import ValidationError, validate_trial


@pytest.fixture(scope="module")
def clean_run(tiny_system):
    engine = Engine(tiny_system, LightestLoad(), build_filter_chain("en+rob"))
    return engine, engine.run()


class TestCleanTrialsValidate:
    def test_baseline(self, tiny_system, clean_run):
        engine, result = clean_run
        validate_trial(tiny_system, result, engine)

    def test_with_cancellation_hooks(self, tiny_system):
        hooks = AbandonHopelessPolicy(0.25)
        engine = Engine(
            tiny_system,
            MinimumExpectedCompletionTime(),
            build_filter_chain("none"),
            hooks=hooks,
        )
        result = engine.run()
        validate_trial(tiny_system, result, engine)

    def test_with_work_stealing_hooks(self, tiny_system):
        hooks = WorkStealingPolicy()
        engine = Engine(
            tiny_system,
            MinimumExpectedCompletionTime(),
            build_filter_chain("rob"),
            hooks=hooks,
        )
        result = engine.run()
        validate_trial(tiny_system, result, engine)

    def test_batch_engine_output_validates(self, tiny_system):
        from repro.extensions.batch_mode import run_batch_trial

        result = run_batch_trial(tiny_system, "min-min", build_filter_chain("en"))
        validate_trial(tiny_system, result)  # no engine: outcome-level only


def _corrupt_outcome(result, index: int, **changes):
    outcomes = list(result.outcomes)
    outcomes[index] = replace(outcomes[index], **changes)
    return replace(result, outcomes=tuple(outcomes))


class TestCorruptionDetected:
    def test_wrong_outcome_count(self, tiny_system, clean_run):
        _, result = clean_run
        bad = replace(result, outcomes=result.outcomes[:-1])
        with pytest.raises(ValidationError):
            validate_trial(tiny_system, bad)

    def test_time_travel_start(self, tiny_system, clean_run):
        _, result = clean_run
        idx = next(i for i, o in enumerate(result.outcomes) if not o.discarded)
        bad = _corrupt_outcome(result, idx, start=result.outcomes[idx].arrival - 50.0)
        with pytest.raises(ValidationError, match="started before arrival"):
            validate_trial(tiny_system, bad)

    def test_duration_outside_support(self, tiny_system, clean_run):
        _, result = clean_run
        # Shorten a counted task's duration below its pmf's support: the
        # task stays on time and within budget (so the recount still
        # closes) but the duration is impossible.
        idx = next(
            i
            for i, o in enumerate(result.outcomes)
            if not o.discarded
            and o.on_time()
            and o.completion <= result.exhaustion_time
        )
        o = result.outcomes[idx]
        node = int(tiny_system.cluster.core_node_index[o.core_id])
        pmf = tiny_system.table.pmf(o.type_id, node, o.pstate)
        bad = _corrupt_outcome(result, idx, completion=o.start + pmf.start / 2)
        with pytest.raises(ValidationError, match="outside"):
            validate_trial(tiny_system, bad)

    def test_overlapping_executions(self, tiny_system, clean_run):
        _, result = clean_run
        by_core: dict[int, list[int]] = {}
        for i, o in enumerate(result.outcomes):
            if not o.discarded:
                by_core.setdefault(o.core_id, []).append(i)
        core, indices = next(
            (c, idx) for c, idx in by_core.items() if len(idx) >= 2
        )
        first, second = indices[0], indices[1]
        o1 = result.outcomes[first]
        # Shift the second execution into the first one's interval but
        # keep its duration on the pmf support by moving start AND end.
        o2 = result.outcomes[second]
        dur = o2.completion - o2.start
        bad = _corrupt_outcome(
            result, second, start=o1.start, completion=o1.start + dur
        )
        with pytest.raises(ValidationError):
            validate_trial(tiny_system, bad)

    def test_inconsistent_recount(self, tiny_system, clean_run):
        _, result = clean_run
        # Claim one fewer late / one more within than reality (keeps the
        # dataclass-level checks satisfied, so only validate_trial sees it).
        if result.late == 0:
            pytest.skip("no late tasks to misattribute in this draw")
        bad = replace(
            result,
            late=result.late - 1,
            completed_within=result.completed_within + 1,
        )
        with pytest.raises(ValidationError, match="recount"):
            validate_trial(tiny_system, bad)

    def test_energy_mismatch_with_engine(self, tiny_system, clean_run):
        engine, result = clean_run
        bad = replace(result, total_energy=result.total_energy * 2.0)
        with pytest.raises(ValidationError, match="energy mismatch"):
            validate_trial(tiny_system, bad, engine)

    def test_discarded_with_assignment(self, tiny_system, clean_run):
        _, result = clean_run
        idx = next(
            (i for i, o in enumerate(result.outcomes) if o.discarded), None
        )
        if idx is None:
            pytest.skip("no discarded tasks in this draw")
        bad = _corrupt_outcome(result, idx, core_id=0)
        with pytest.raises(ValidationError, match="carries an assignment"):
            validate_trial(tiny_system, bad)
