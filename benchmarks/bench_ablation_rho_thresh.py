"""Ablation: the robustness-filter threshold (paper Section V-F).

The paper "empirically determined that a threshold of 0.5 worked well".
This sweep reruns the robustness-filtered Random heuristic (where the
threshold has the most leverage) across thresholds, exposing the
trade-off: too low admits doomed assignments, too high discards tasks and
forces hot P-states.
"""

from __future__ import annotations

from _common import bench_config, bench_seed, bench_tasks, bench_trials, emit
from repro.experiments.runner import VariantSpec, run_ensemble

SPEC = VariantSpec("Random", "rob")
THRESHOLDS = (0.1, 0.3, 0.5, 0.7, 0.9)


def run_ablation() -> dict[str, float]:
    rows: dict[str, float] = {}
    lines = [
        f"rho_thresh ablation: {SPEC.label}, median missed of {bench_tasks()} "
        f"({bench_trials()} trials)"
    ]
    for thresh in THRESHOLDS:
        config = bench_config(filters={"rho_thresh": thresh})
        ensemble = run_ensemble([SPEC], config, bench_trials(), base_seed=bench_seed())
        med = ensemble.median_misses(SPEC)
        rows[f"rho={thresh}"] = med
        lines.append(f"  rho_thresh={thresh:4.1f}: {med:7.1f}")
    emit("ablation_rho_thresh", "\n".join(lines))
    return rows


def test_ablation_rho_thresh(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    benchmark.extra_info.update(rows)
    # The paper's 0.5 should beat the permissive extreme for Random.
    assert rows["rho=0.5"] <= rows["rho=0.1"]
