"""Ablation: pmf grid resolution (our discretization choice, DESIGN.md §6).

The grid step ``dt`` trades prediction accuracy against simulation speed
(every pmf array scales as support/dt).  This ablation shows the headline
metric is stable across a 4x range of resolutions while wall-clock cost
is not — justifying the default dt=15.
"""

from __future__ import annotations

import time

from _common import bench_config, bench_seed, bench_tasks, bench_trials, emit
from repro.experiments.runner import VariantSpec, run_ensemble

SPEC = VariantSpec("LL", "en+rob")
STEPS = (7.5, 15.0, 30.0, 60.0)


def run_ablation() -> dict[str, float]:
    rows: dict[str, float] = {}
    lines = [
        f"grid-resolution ablation: {SPEC.label}, median missed of "
        f"{bench_tasks()} ({bench_trials()} trials)"
    ]
    for dt in STEPS:
        config = bench_config(grid={"dt": dt})
        start = time.perf_counter()
        ensemble = run_ensemble([SPEC], config, bench_trials(), base_seed=bench_seed())
        elapsed = time.perf_counter() - start
        med = ensemble.median_misses(SPEC)
        rows[f"dt={dt}"] = med
        rows[f"seconds_dt={dt}"] = round(elapsed, 2)
        lines.append(f"  dt={dt:5.1f}: median={med:7.1f}   wall={elapsed:6.2f}s")
    emit("ablation_grid", "\n".join(lines))
    return rows


def test_ablation_grid(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    benchmark.extra_info.update(rows)
    # The metric must be stable between the default and a 2x finer grid.
    ref, fine = rows["dt=15.0"], rows["dt=7.5"]
    assert abs(fine - ref) <= 0.1 * bench_tasks()
