"""Benchmark-suite configuration: make ``benchmarks/`` importable."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
