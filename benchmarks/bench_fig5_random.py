"""Figure 5: missed deadlines of the Random heuristic across variants.

Random is the contrast baseline with the paper's most distinctive shape:
it is by far the worst unfiltered, the robustness filter alone rescues it
(removing the low-performance assignments it would otherwise stumble
into), and "en+rob" brings it within a few points of the sophisticated
heuristics.
"""

from __future__ import annotations

from _common import bench_tasks, emit, grid_ensemble
from repro.analysis.boxplot import ascii_boxplot_group
from repro.experiments.report import figure_table
from repro.experiments.runner import VariantSpec
from repro.filters.chain import VARIANTS

HEURISTIC = "Random"


def run_figure() -> dict[str, float]:
    ensemble = grid_ensemble()
    table = figure_table(ensemble, HEURISTIC, bench_tasks())
    plot = ascii_boxplot_group(
        ensemble.by_heuristic(HEURISTIC), title=f"fig5: {HEURISTIC} missed deadlines"
    )
    emit("fig5_random", table + "\n\n" + plot)
    return {v: ensemble.median_misses(VariantSpec(HEURISTIC, v)) for v in VARIANTS}


def test_fig5_random(benchmark):
    medians = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    benchmark.extra_info.update({f"median_{k}": v for k, v in medians.items()})
    # Robustness filtering alone must rescue Random substantially.
    assert medians["rob"] < medians["none"]
    assert medians["en+rob"] < medians["none"]
