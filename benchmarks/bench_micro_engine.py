"""Microbenchmarks: end-to-end engine throughput.

Measures full-trial wall time and per-mapping-event cost of the
vectorized candidate builder — the quantities that determine how far the
study scales (the paper capped its cluster at 8 nodes "to limit our
simulation execution times").
"""

from __future__ import annotations

from dataclasses import replace

from repro import SimulationConfig, build_trial_system
from repro.filters.chain import make_filter_chain
from repro.heuristics.lightest_load import LightestLoad
from repro.sim.engine import run_trial
from repro.sim.mapper import CandidateBuilder, build_candidate_set
from repro.sim.state import CoreState

from _common import bench_seed


def small_system():
    config = SimulationConfig(seed=bench_seed())
    config = replace(config, workload=config.workload.with_num_tasks(150))
    return build_trial_system(config)


def test_full_trial_ll_filtered(benchmark):
    system = small_system()

    def run():
        return run_trial(system, LightestLoad(), make_filter_chain("en+rob"))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.num_tasks == 150
    benchmark.extra_info["missed"] = result.missed


def test_candidate_build_event(benchmark):
    system = small_system()
    cluster = system.cluster
    dt = system.config.grid.dt
    cores = [
        CoreState(cid, int(cluster.core_node_index[cid]), dt)
        for cid in range(cluster.num_cores)
    ]
    task = system.workload.tasks[0]

    cands = benchmark(build_candidate_set, task, cores, system.table, task.arrival)
    assert len(cands) == cluster.num_cores * cluster.num_pstates


def test_system_build(benchmark):
    config = SimulationConfig(seed=1)
    config = replace(config, workload=config.workload.with_num_tasks(100))
    system = benchmark.pedantic(build_trial_system, args=(config,), rounds=3, iterations=1)
    assert system.num_tasks == 100


def test_candidate_builder_event(benchmark):
    system = small_system()
    cluster = system.cluster
    dt = system.config.grid.dt
    cores = [
        CoreState(cid, int(cluster.core_node_index[cid]), dt)
        for cid in range(cluster.num_cores)
    ]
    builder = CandidateBuilder(cores, system.table)
    task = system.workload.tasks[0]

    cands = benchmark(builder.build, task, task.arrival)
    assert len(cands) == cluster.num_cores * cluster.num_pstates
