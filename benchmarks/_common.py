"""Shared infrastructure for the benchmark harness.

Scale knobs (environment variables):

``REPRO_TRIALS``  trials per variant (default 5; the paper used 50)
``REPRO_TASKS``   tasks per trial (default 300; the paper used 1000)
``REPRO_SEED``    ensemble base seed (default 0)

Every bench prints its table and also writes it under ``results/`` so the
rows survive pytest's output capture; ``scripts/run_full_grid.py``
regenerates everything at full paper scale.

The full 16-variant grid ensemble is computed once per pytest session and
shared by the figure benches (fig2-5 are row-subsets of it, fig6 and the
text summary need all of it).
"""

from __future__ import annotations

import functools
import os
import pathlib
from dataclasses import replace

from repro import SimulationConfig
from repro.experiments.figures import full_grid_specs
from repro.experiments.runner import EnsembleResult, run_ensemble

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[1] / "results"


def env_int(name: str, default: int) -> int:
    """Integer environment knob."""
    return int(os.environ.get(name, default))


def bench_trials() -> int:
    return env_int("REPRO_TRIALS", 5)


def bench_tasks() -> int:
    return env_int("REPRO_TASKS", 300)


def bench_seed() -> int:
    return env_int("REPRO_SEED", 0)


def bench_config(**section_updates) -> SimulationConfig:
    """The benchmark-scale simulation configuration."""
    config = SimulationConfig(seed=bench_seed())
    tasks = bench_tasks()
    if tasks != config.workload.num_tasks:
        config = replace(config, workload=config.workload.with_num_tasks(tasks))
    if section_updates:
        config = config.with_updates(**section_updates)
    return config


@functools.lru_cache(maxsize=1)
def grid_ensemble() -> EnsembleResult:
    """The full 16-variant ensemble at benchmark scale (computed once)."""
    return run_ensemble(
        full_grid_specs(), bench_config(), bench_trials(), base_seed=bench_seed()
    )


def emit(name: str, text: str) -> None:
    """Print a bench's table and persist it under results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"bench_{name}.txt").write_text(text + "\n")
