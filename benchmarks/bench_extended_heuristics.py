"""Extended comparison: the paper's heuristics vs four more classics.

Puts the literature baselines of :mod:`repro.extensions.baselines`
(MET, OLB, KPB, MEEC) through the same filtered evaluation as the
paper's four, testing the paper's thesis out of sample: if the filters
drive performance, even load-blind MET or deadline-blind MEEC should be
competitive once filtered.
"""

from __future__ import annotations

from _common import bench_config, bench_seed, bench_tasks, bench_trials, emit
from repro import rng as rng_mod
from repro.extensions.baselines import make_extended_heuristic
from repro.filters.chain import make_filter_chain
from repro.heuristics.registry import make_heuristic
from repro.sim.engine import run_trial
from repro.sim.system import build_trial_system

import numpy as np

ALL = ("SQ", "MECT", "LL", "Random", "MET", "OLB", "KPB", "MEEC")
VARIANT = "en+rob"


def _make(name: str, seed: int):
    if name in ("SQ", "MECT", "LL", "Random"):
        return make_heuristic(name, rng_mod.stream(seed, "heuristic", name))
    return make_extended_heuristic(name)


def run_comparison() -> dict[str, float]:
    config = bench_config()
    trials = bench_trials()
    misses: dict[str, list[int]] = {name: [] for name in ALL}
    for trial in range(trials):
        seed = rng_mod.spawn_trial_seed(bench_seed(), trial)
        system = build_trial_system(config.with_seed(seed))
        for name in ALL:
            result = run_trial(
                system, _make(name, seed), make_filter_chain(VARIANT, config.filters)
            )
            misses[name].append(result.missed)
    rows = {name: float(np.median(vals)) for name, vals in misses.items()}
    lines = [
        f"extended heuristics under '{VARIANT}' filtering: median missed of "
        f"{bench_tasks()} ({trials} trials)"
    ]
    for name, med in sorted(rows.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:>7}: {med:7.1f}")
    emit("extended_heuristics", "\n".join(lines))
    return rows


def test_extended_heuristics(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    benchmark.extra_info.update(rows)
    # The paper's thesis, out of sample: filtered classics stay within
    # a bounded band of the best filtered heuristic.
    best = min(rows.values())
    for name in ("MET", "OLB", "KPB"):
        assert rows[name] <= best + 0.30 * bench_tasks()
