"""Figure 3: missed deadlines of the MECT heuristic across filter variants.

Expected shape (paper Section VII): unfiltered MECT rides P0 and busts the
energy budget; "en" recovers most of it; "rob" alone barely changes MECT
because MECT already picks the fastest (and hence most robust) states.
"""

from __future__ import annotations

from _common import bench_tasks, emit, grid_ensemble
from repro.analysis.boxplot import ascii_boxplot_group
from repro.experiments.report import figure_table
from repro.experiments.runner import VariantSpec
from repro.filters.chain import VARIANTS

HEURISTIC = "MECT"


def run_figure() -> dict[str, float]:
    ensemble = grid_ensemble()
    table = figure_table(ensemble, HEURISTIC, bench_tasks())
    plot = ascii_boxplot_group(
        ensemble.by_heuristic(HEURISTIC), title=f"fig3: {HEURISTIC} missed deadlines"
    )
    emit("fig3_mect", table + "\n\n" + plot)
    return {v: ensemble.median_misses(VariantSpec(HEURISTIC, v)) for v in VARIANTS}


def test_fig3_mect(benchmark):
    medians = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    benchmark.extra_info.update({f"median_{k}": v for k, v in medians.items()})
    assert medians["en+rob"] < medians["none"]
    # "rob" alone is inert for MECT (no significant change).
    assert abs(medians["rob"] - medians["none"]) <= 0.15 * max(medians["none"], 1)
