"""Extension bench: abandoning hopeless queued tasks.

Section VIII's "cancel ... tasks" direction.  Under the baseline model a
task that can no longer meet its deadline still occupies its core to
completion, wasting time and energy.  This bench measures how much the
:class:`~repro.extensions.cancellation.AbandonHopelessPolicy` recovers
for the unfiltered Random mapper — the policy whose mismapped bursts
leave the most hopeless work in queues — across cancellation thresholds.
"""

from __future__ import annotations

import numpy as np

from _common import bench_config, bench_seed, bench_tasks, bench_trials, emit
from repro import rng as rng_mod
from repro.extensions.cancellation import AbandonHopelessPolicy
from repro.filters.chain import make_filter_chain
from repro.heuristics.registry import make_heuristic
from repro.sim.engine import run_trial
from repro.sim.system import build_trial_system

THRESHOLDS = (None, 0.02, 0.10, 0.25)


def run_comparison() -> dict[str, float]:
    config = bench_config()
    trials = bench_trials()
    misses: dict[str, list[int]] = {}
    cancelled: dict[str, int] = {}
    for trial in range(trials):
        seed = rng_mod.spawn_trial_seed(bench_seed(), trial)
        system = build_trial_system(config.with_seed(seed))
        for thresh in THRESHOLDS:
            label = "no cancel" if thresh is None else f"cancel<{thresh}"
            hooks = None if thresh is None else AbandonHopelessPolicy(thresh)
            result = run_trial(
                system,
                # Same stream key for every threshold: all variants see
                # identical random assignment draws (paired comparison).
                make_heuristic("Random", rng_mod.stream(seed, "cancel-bench")),
                make_filter_chain("none", config.filters),
                hooks=hooks,
            )
            misses.setdefault(label, []).append(result.missed)
            if hooks is not None:
                cancelled[label] = cancelled.get(label, 0) + len(hooks.cancelled)

    rows = {name: float(np.median(vals)) for name, vals in misses.items()}
    lines = [
        f"cancellation extension: Random/none, median missed of {bench_tasks()} "
        f"({trials} trials)"
    ]
    for label in misses:
        extra = f"   cancelled={cancelled[label]}" if label in cancelled else ""
        lines.append(f"  {label:>12}: {rows[label]:7.1f}{extra}")
    emit("ext_cancellation", "\n".join(lines))
    return rows


def test_cancellation(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    benchmark.extra_info.update(rows)
    # Cancelling truly hopeless work must not hurt the headline metric.
    assert rows["cancel<0.02"] <= rows["no cancel"] + 0.05 * bench_tasks()
