"""Extension bench: immediate-mode (the paper) vs batch-mode mapping.

The paper constrains its manager to immediate mode (Section II); this
bench quantifies what that constraint costs by running batch-mode
Min-Min / Max-Min over the same trials as immediate-mode MECT and LL,
all under the paper's "en+rob" filters where applicable.
"""

from __future__ import annotations

import numpy as np

from _common import bench_config, bench_seed, bench_tasks, bench_trials, emit
from repro.extensions.batch_mode import run_batch_trial
from repro.filters.chain import make_filter_chain
from repro.heuristics.registry import make_heuristic
from repro import rng as rng_mod
from repro.sim.engine import run_trial
from repro.sim.system import build_trial_system


def run_comparison() -> dict[str, float]:
    config = bench_config()
    trials = bench_trials()
    misses: dict[str, list[int]] = {
        "MECT/en+rob (immediate)": [],
        "LL/en+rob (immediate)": [],
        "Min-Min/en+rob (batch)": [],
        "Max-Min/en+rob (batch)": [],
    }
    for trial in range(trials):
        seed = rng_mod.spawn_trial_seed(bench_seed(), trial)
        system = build_trial_system(config.with_seed(seed))
        chain = make_filter_chain("en+rob", config.filters)
        misses["MECT/en+rob (immediate)"].append(
            run_trial(system, make_heuristic("MECT"), chain).missed
        )
        misses["LL/en+rob (immediate)"].append(
            run_trial(system, make_heuristic("LL"), chain).missed
        )
        misses["Min-Min/en+rob (batch)"].append(
            run_batch_trial(system, "min-min", make_filter_chain("en+rob", config.filters)).missed
        )
        misses["Max-Min/en+rob (batch)"].append(
            run_batch_trial(system, "max-min", make_filter_chain("en+rob", config.filters)).missed
        )
    rows = {name: float(np.median(vals)) for name, vals in misses.items()}
    lines = [
        f"batch vs immediate mode: median missed of {bench_tasks()} "
        f"({trials} trials)"
    ]
    for name, med in sorted(rows.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:>26}: {med:7.1f}")
    emit("ext_batch_mode", "\n".join(lines))
    return rows


def test_batch_mode(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    benchmark.extra_info.update(rows)
    # Deferred commitment must be at least competitive with the
    # immediate-mode field on the shared trials.
    best_immediate = min(
        rows["MECT/en+rob (immediate)"], rows["LL/en+rob (immediate)"]
    )
    assert rows["Min-Min/en+rob (batch)"] <= best_immediate + 0.25 * bench_tasks()
