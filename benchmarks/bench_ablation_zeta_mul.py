"""Ablation: adaptive vs fixed fair-share multiplier (paper Section V-F).

The paper adapts zeta_mul to the average queue depth (0.8 / 1.0 / 1.2).
This ablation pins the multiplier to each fixed value and compares
against the adaptive rule, using the energy-filtered LL heuristic where
the threshold does the most work.
"""

from __future__ import annotations

import numpy as np

from _common import bench_config, bench_seed, bench_tasks, bench_trials, emit
from repro.experiments.runner import VariantSpec, run_ensemble

SPEC = VariantSpec("LL", "en+rob")


def run_ablation() -> dict[str, float]:
    rows: dict[str, float] = {}
    settings = {
        "adaptive (paper)": None,
        "fixed 0.8": 0.8,
        "fixed 1.0": 1.0,
        "fixed 1.2": 1.2,
    }
    lines = [
        f"zeta_mul ablation: {SPEC.label}, median missed of {bench_tasks()} "
        f"({bench_trials()} trials)"
    ]
    for label, fixed in settings.items():
        if fixed is None:
            config = bench_config()
        else:
            config = bench_config(
                filters={
                    "zeta_mul_low": fixed,
                    "zeta_mul_mid": fixed,
                    "zeta_mul_high": fixed,
                }
            )
        ensemble = run_ensemble([SPEC], config, bench_trials(), base_seed=bench_seed())
        med = ensemble.median_misses(SPEC)
        rows[label] = med
        lines.append(f"  {label:>16}: {med:7.1f}")
    emit("ablation_zeta_mul", "\n".join(lines))
    return rows


def test_ablation_zeta_mul(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    benchmark.extra_info.update(rows)
    # The adaptive rule should be competitive with the best fixed value.
    fixed_best = min(v for k, v in rows.items() if k.startswith("fixed"))
    assert rows["adaptive (paper)"] <= fixed_best * 1.25 + 5
