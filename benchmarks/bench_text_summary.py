"""Section VII in-text numbers: the filtering-gain summary table.

Regenerates the medians grid and the percentage improvements the paper
quotes in its closing summary ("using 'en+rob' filtering for the Random,
SQ, MECT, and LL heuristics results in improvements ... of 25%, 13.65%,
13.05%, and 15.5%" — stated in percentage points of the 1,000-task
workload) plus the filtered-Random-vs-filtered-LL gap.
"""

from __future__ import annotations

from _common import bench_tasks, emit, grid_ensemble
from repro.experiments.report import summary_table
from repro.experiments.runner import VariantSpec
from repro.heuristics.registry import HEURISTICS


def run_summary() -> dict[str, float]:
    ensemble = grid_ensemble()
    tasks = bench_tasks()
    text = summary_table(ensemble, tasks)

    pp_lines = ["", "en+rob gain in percentage points of the workload (paper units):"]
    gains: dict[str, float] = {}
    for h in HEURISTICS:
        none_med = ensemble.median_misses(VariantSpec(h, "none"))
        filt_med = ensemble.median_misses(VariantSpec(h, "en+rob"))
        pp = 100.0 * (none_med - filt_med) / tasks
        gains[h] = pp
        pp_lines.append(f"  {h:>7}: {pp:+.2f} pp")
    emit("text_summary", text + "\n" + "\n".join(pp_lines))
    return gains


def test_text_summary(benchmark):
    gains = benchmark.pedantic(run_summary, rounds=1, iterations=1)
    benchmark.extra_info.update({f"gain_pp_{k}": v for k, v in gains.items()})
    # Every heuristic improves with en+rob filtering (paper: >= 13 pp for
    # the informed heuristics at full scale; the sign must hold at any
    # scale).
    assert all(g > 0 for g in gains.values())
