"""Figure 2: missed deadlines of the SQ heuristic across filter variants.

Regenerates the rows of the paper's Figure 2 box plot (SQ with "none",
"en", "rob", "en+rob") at benchmark scale and records the medians.
Expected shape: "en" is a large improvement, "rob" alone changes little,
"en+rob" is best.
"""

from __future__ import annotations

from _common import bench_tasks, emit, grid_ensemble
from repro.analysis.boxplot import ascii_boxplot_group
from repro.experiments.report import figure_table
from repro.experiments.runner import VariantSpec
from repro.filters.chain import VARIANTS

HEURISTIC = "SQ"


def run_figure() -> dict[str, float]:
    ensemble = grid_ensemble()
    table = figure_table(ensemble, HEURISTIC, bench_tasks())
    plot = ascii_boxplot_group(
        ensemble.by_heuristic(HEURISTIC), title=f"fig2: {HEURISTIC} missed deadlines"
    )
    emit("fig2_sq", table + "\n\n" + plot)
    return {
        v: ensemble.median_misses(VariantSpec(HEURISTIC, v)) for v in VARIANTS
    }


def test_fig2_sq(benchmark):
    medians = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    benchmark.extra_info.update({f"median_{k}": v for k, v in medians.items()})
    assert medians["en+rob"] < medians["none"]
