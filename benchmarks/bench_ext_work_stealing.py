"""Extension bench: what does rescheduling (work stealing) buy?

Section VIII asks about "a system with the ability to cancel and/or
reschedule tasks".  This bench runs the filtered Random mapper (the
policy with the worst load balance, hence the most to gain) with and
without the :class:`~repro.extensions.rescheduling.WorkStealingPolicy`,
plus filtered LL as the engineered reference point.
"""

from __future__ import annotations

import numpy as np

from _common import bench_config, bench_seed, bench_tasks, bench_trials, emit
from repro import rng as rng_mod
from repro.extensions.rescheduling import WorkStealingPolicy
from repro.filters.chain import make_filter_chain
from repro.heuristics.registry import make_heuristic
from repro.sim.engine import run_trial
from repro.sim.system import build_trial_system


def run_comparison() -> dict[str, float]:
    config = bench_config()
    trials = bench_trials()
    misses: dict[str, list[int]] = {
        "Random/rob": [],
        "Random/rob + steal": [],
        "LL/en+rob": [],
    }
    steals_total = 0
    for trial in range(trials):
        seed = rng_mod.spawn_trial_seed(bench_seed(), trial)
        system = build_trial_system(config.with_seed(seed))

        def rand():
            return make_heuristic("Random", rng_mod.stream(seed, "ws-bench"))

        base = run_trial(system, rand(), make_filter_chain("rob", config.filters))
        policy = WorkStealingPolicy()
        stolen = run_trial(
            system, rand(), make_filter_chain("rob", config.filters), hooks=policy
        )
        ll = run_trial(
            system,
            make_heuristic("LL"),
            make_filter_chain("en+rob", config.filters),
        )
        misses["Random/rob"].append(base.missed)
        misses["Random/rob + steal"].append(stolen.missed)
        misses["LL/en+rob"].append(ll.missed)
        steals_total += len(policy.steals)

    rows = {name: float(np.median(vals)) for name, vals in misses.items()}
    lines = [
        f"work-stealing extension: median missed of {bench_tasks()} "
        f"({trials} trials; {steals_total} total steals)"
    ]
    for name, med in rows.items():
        lines.append(f"  {name:>20}: {med:7.1f}")
    emit("ext_work_stealing", "\n".join(lines))
    rows["total_steals"] = float(steals_total)
    return rows


def test_work_stealing(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    benchmark.extra_info.update(rows)
    # Rescheduling must not make the load-blind mapper worse.
    assert rows["Random/rob + steal"] <= rows["Random/rob"] + 0.05 * bench_tasks()
