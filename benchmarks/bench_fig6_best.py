"""Figure 6: the best-performing variant of each heuristic, head-to-head.

The paper's take-away figure: after filtering, all four heuristics land
close together (filtered Random within ~4 points of filtered LL at full
scale), demonstrating that the filters drive the performance.
"""

from __future__ import annotations

from _common import bench_tasks, emit, grid_ensemble
from repro.analysis.boxplot import ascii_boxplot_group
from repro.experiments.report import best_variant_table
from repro.heuristics.registry import HEURISTICS


def run_figure() -> dict[str, float]:
    ensemble = grid_ensemble()
    table = best_variant_table(ensemble, bench_tasks())
    best = {h: ensemble.best_variant(h) for h in HEURISTICS}
    plot = ascii_boxplot_group(
        {f"{h}/{best[h].variant}": ensemble.misses(best[h]) for h in HEURISTICS},
        title="fig6: best variant of each heuristic",
    )
    emit("fig6_best", table + "\n\n" + plot)
    return {h: ensemble.median_misses(best[h]) for h in HEURISTICS}


def test_fig6_best(benchmark):
    medians = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    benchmark.extra_info.update({f"median_{k}": v for k, v in medians.items()})
    # The filtered field is tight: no heuristic should be wildly apart.
    spread = max(medians.values()) - min(medians.values())
    assert spread <= 0.2 * bench_tasks()
