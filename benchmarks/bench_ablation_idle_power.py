"""Ablation: idle-power accounting (DESIGN.md §4.3).

The paper's cores cannot be turned off, so idle cores draw their parked
P-state's power (our default, ``P4_FLOOR``).  The alternative reading —
folding the idle floor into the excluded "constant" consumption
(``EXCLUDED``) — makes the budget dramatically looser and erases most of
the energy-cutoff misses that give the paper its unfiltered-vs-filtered
contrast.  This ablation quantifies that.
"""

from __future__ import annotations

from _common import bench_config, bench_seed, bench_tasks, bench_trials, emit
from repro.config import IdlePowerMode
from repro.experiments.runner import VariantSpec, run_ensemble

SPECS = (VariantSpec("MECT", "none"), VariantSpec("LL", "en+rob"))


def run_ablation() -> dict[str, float]:
    rows: dict[str, float] = {}
    lines = [
        f"idle-power ablation: median missed of {bench_tasks()} "
        f"({bench_trials()} trials)",
        f"{'mode':>10} " + " ".join(f"{s.label:>12}" for s in SPECS),
    ]
    for mode in (IdlePowerMode.P4_FLOOR, IdlePowerMode.EXCLUDED):
        config = bench_config(energy={"idle_power_mode": mode})
        ensemble = run_ensemble(SPECS, config, bench_trials(), base_seed=bench_seed())
        row = [f"{mode.value:>10}"]
        for spec in SPECS:
            med = ensemble.median_misses(spec)
            rows[f"{mode.value}:{spec.label}"] = med
            row.append(f"{med:12.1f}")
        lines.append(" ".join(row))
    emit("ablation_idle_power", "\n".join(lines))
    return rows


def test_ablation_idle_power(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    benchmark.extra_info.update(rows)
    # The idle floor is what punishes the energy-oblivious baseline.
    assert rows["p4_floor:MECT/none"] >= rows["excluded:MECT/none"]
