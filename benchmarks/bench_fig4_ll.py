"""Figure 4: missed deadlines of the LL heuristic across filter variants.

LL is the paper's new heuristic; its filtered variant ("en+rob") is the
best performer of the whole study.
"""

from __future__ import annotations

from _common import bench_tasks, emit, grid_ensemble
from repro.analysis.boxplot import ascii_boxplot_group
from repro.experiments.report import figure_table
from repro.experiments.runner import VariantSpec
from repro.filters.chain import VARIANTS

HEURISTIC = "LL"


def run_figure() -> dict[str, float]:
    ensemble = grid_ensemble()
    table = figure_table(ensemble, HEURISTIC, bench_tasks())
    plot = ascii_boxplot_group(
        ensemble.by_heuristic(HEURISTIC), title=f"fig4: {HEURISTIC} missed deadlines"
    )
    emit("fig4_ll", table + "\n\n" + plot)
    return {v: ensemble.median_misses(VariantSpec(HEURISTIC, v)) for v in VARIANTS}


def test_fig4_ll(benchmark):
    medians = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    benchmark.extra_info.update({f"median_{k}": v for k, v in medians.items()})
    assert medians["en+rob"] < medians["none"]
    assert medians["en"] < medians["none"]
