"""Microbenchmarks: the pmf operations on the mapper's hot path.

Section IV-B notes that "convolutions can take considerable time, but the
overhead can be negligible if ... the performance gained justifies their
usage"; these benches measure that overhead for realistic operand sizes
(an execution-time pmf is ~50-150 bins at the default grid).
"""

from __future__ import annotations

import numpy as np

from repro.stoch.distributions import discretized_gamma
from repro.stoch.ops import convolve, prob_sum_at_most, truncate_below, shift
from repro.stoch.pmf import PMF

EXEC = discretized_gamma(mean=750.0, cv=0.2, dt=15.0)
LONG_EXEC = discretized_gamma(mean=1800.0, cv=0.2, dt=15.0)
READY = convolve(convolve(EXEC, EXEC), LONG_EXEC)  # a 3-deep queue


def test_convolve_exec_pair(benchmark):
    out = benchmark(convolve, EXEC, LONG_EXEC)
    assert abs(out.mean() - (EXEC.mean() + LONG_EXEC.mean())) < 1.0


def test_convolve_into_deep_queue(benchmark):
    out = benchmark(convolve, READY, EXEC)
    assert abs(out.total_mass() - 1.0) < 1e-9


def test_truncate_running_task(benchmark):
    shifted = shift(EXEC, 100.0)
    cut = shifted.start + 0.4 * (shifted.stop - shifted.start)
    out = benchmark(truncate_below, shifted, cut)
    assert abs(out.total_mass() - 1.0) < 1e-9


def test_prob_on_time_query(benchmark):
    deadline = READY.mean() + EXEC.mean()
    p = benchmark(prob_sum_at_most, READY, EXEC, deadline)
    assert 0.0 <= p <= 1.0


def test_cdf_query(benchmark):
    t = READY.mean()
    p = benchmark(READY.prob_at_most, t)
    assert 0.0 <= p <= 1.0


def test_quantile_sampling(benchmark):
    out = benchmark(EXEC.quantile, 0.73)
    assert EXEC.start <= out <= EXEC.stop


def test_pmf_construction(benchmark):
    probs = np.random.default_rng(0).random(120)

    def build():
        return PMF(0.0, 15.0, probs)

    out = benchmark(build)
    assert len(out) == 120


def test_truncate_running_task_cached_hit(benchmark):
    # The hot-path case the kernel cache turns into a dict lookup: the
    # same (contents, cut-bin) truncation repeating across cores/tasks.
    from repro.perf.kernel_cache import KernelCache
    from repro.stoch.ops import set_kernel_cache

    shifted = shift(EXEC, 100.0)
    cut = shifted.start + 0.4 * (shifted.stop - shifted.start)
    cache = KernelCache()
    previous = set_kernel_cache(cache)
    try:
        truncate_below(shifted, cut)  # warm the entry
        out = benchmark(truncate_below, shifted, cut)
    finally:
        set_kernel_cache(previous)
    assert abs(out.total_mass() - 1.0) < 1e-9
    assert cache.stats().hits >= 1
