#!/usr/bin/env python
"""Anatomy of a bursty trial: queues, P-state choices, and where misses live.

Replays one trial with trace collection on and dissects it by arrival
phase (early burst / lull / late burst), showing how the energy filter
changes P-state choices between congestion and calm — the mechanism
behind the paper's Figures 2-5.

Run:  python examples/burst_oversubscription.py
"""

from dataclasses import replace

import numpy as np

from repro import SimulationConfig, build_trial_system, run_trial
from repro.analysis.phases import phase_breakdown
from repro.filters import build_filter_chain
from repro.heuristics import MinimumExpectedCompletionTime
from repro.sim.metrics import TraceCollector


def sparkline(values: np.ndarray, bins: int = 60) -> str:
    """Down-sample a series into a text sparkline."""
    blocks = " .:-=+*#%@"
    if values.size == 0:
        return ""
    chunks = np.array_split(values, bins)
    means = np.array([c.mean() if c.size else 0.0 for c in chunks])
    top = means.max() if means.max() > 0 else 1.0
    idx = np.minimum((means / top * (len(blocks) - 1)).astype(int), len(blocks) - 1)
    return "".join(blocks[i] for i in idx)


def main() -> None:
    config = SimulationConfig(seed=99)
    config = replace(config, workload=config.workload.with_num_tasks(600))
    system = build_trial_system(config)

    for variant in ("none", "en+rob"):
        collector = TraceCollector()
        heuristic = MinimumExpectedCompletionTime()
        result = run_trial(
            system, heuristic, build_filter_chain(variant), collector=collector
        )
        traces = collector.as_arrays()
        print(f"=== MECT/{variant} ===")
        print(f"queue depth over arrivals: [{sparkline(traces['queue_depths'])}]")
        est = traces["energy_estimates"] / system.budget
        print(f"energy estimate (frac)   : [{sparkline(np.maximum(est, 0.0))}]")
        hist = collector.pstate_histogram(system.cluster.num_pstates)
        total = hist.sum() if hist.sum() else 1
        shares = " ".join(
            f"P{i}:{100 * h / total:.0f}%" for i, h in enumerate(hist)
        )
        print(f"P-state choices          : {shares}")
        for phase, stats in phase_breakdown(result, config.workload).items():
            print(f"  {phase:>4}: missed {stats.missed:3d} / {stats.total}")
        print(
            f"  overall: {result.missed} missed "
            f"({result.late} late, {result.energy_cutoff} after budget, "
            f"{result.discarded} discarded); "
            f"energy {100 * result.energy_utilization():.0f}% of budget\n"
        )


if __name__ == "__main__":
    main()
