#!/usr/bin/env python
"""Section VIII extensions in action: priorities + cancellation.

Stamps the workload with priority levels (1x / 2x / 4x) and compares:

* plain filtered LL (priority-blind);
* priority-shaped LL (load = EEC * (1 - rho)^priority) behind a
  priority-scaled energy filter (important tasks get a bigger fair share
  of the remaining budget);
* the same, plus the abandon-hopeless cancellation policy.

Everything is scored by priority-weighted missed work: a 4x task counts
as four 1x tasks.

Run:  python examples/priority_scheduling.py
"""

from dataclasses import replace

from repro import SimulationConfig, build_trial_system
from repro import rng as rng_mod
from repro.extensions import (
    AbandonHopelessPolicy,
    PriorityEnergyFilter,
    PriorityLightestLoad,
    weighted_missed,
    with_priorities,
)
from repro.filters import FilterChain, RobustnessFilter, build_filter_chain
from repro.heuristics import LightestLoad
from repro.sim.engine import run_trial

SEED = 77


def main() -> None:
    config = SimulationConfig(seed=SEED)
    config = replace(config, workload=config.workload.with_num_tasks(500))
    system = build_trial_system(config)
    prioritized = with_priorities(
        system.workload, rng_mod.stream(SEED, "priorities"), levels=(1.0, 2.0, 4.0)
    )
    system = replace(system, workload=prioritized)

    prio_chain = FilterChain(
        [
            PriorityEnergyFilter.for_workload(prioritized, config.filters),
            RobustnessFilter(config.filters),
        ]
    )
    runs = {
        "LL (priority-blind)": (LightestLoad(), build_filter_chain("en+rob"), None),
        "LL-prio": (PriorityLightestLoad(), prio_chain, None),
        "LL-prio + cancel": (
            PriorityLightestLoad(),
            prio_chain,
            AbandonHopelessPolicy(0.05),
        ),
    }
    print(f"{'policy':>22} {'missed':>7} {'weighted miss':>14} {'cancelled':>10}")
    for label, (heuristic, chain, hooks) in runs.items():
        result = run_trial(system, heuristic, chain, hooks=hooks)
        wm = weighted_missed(result, system.workload)
        cancelled = len(hooks.cancelled) if hooks is not None else 0
        print(f"{label:>22} {result.missed:7d} {100 * wm:13.1f}% {cancelled:10d}")
    print(
        "\nPriority-weighted missed work counts a 4x task as four 1x tasks; "
        "the priority-aware policies shift the inevitable misses onto the "
        "cheap tasks, lowering weighted loss even when raw misses tie."
    )


if __name__ == "__main__":
    main()
