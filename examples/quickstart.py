#!/usr/bin/env python
"""Quickstart: simulate one trial of the paper's environment.

Builds the Section VI environment (heterogeneous 8-node cluster, CVB
execution-time pmfs, bursty arrivals, energy budget), runs the paper's
best policy (Lightest Load with energy + robustness filtering) against
the unfiltered baseline, and prints the outcome.

Run:  python examples/quickstart.py [seed]
"""

import sys
from dataclasses import replace

from repro import SimulationConfig, build_trial_system, run_trial
from repro.experiments.calibrate import subscription_report
from repro.filters import make_filter_chain
from repro.heuristics import LightestLoad


def main(seed: int = 2011) -> None:
    # A half-size workload keeps the demo under ~10 s on one core; drop
    # with_num_tasks(...) for the paper's full 1,000-task trials.
    config = SimulationConfig(seed=seed)
    config = replace(config, workload=config.workload.with_num_tasks(500))
    system = build_trial_system(config)

    print("=== Environment ===")
    print(system.cluster.describe())
    rep = subscription_report(system)
    print(
        f"\nburst utilization {rep.fast_utilization:.2f}x capacity, "
        f"lull utilization {rep.slow_utilization:.2f}x, "
        f"budget {system.budget / 1e6:.1f} MJ "
        f"({rep.budget_per_task / 1e3:.0f} kJ per task)"
    )

    print("\n=== Policies ===")
    for variant in ("none", "en+rob"):
        result = run_trial(system, LightestLoad(), make_filter_chain(variant))
        print(
            f"LL/{variant:>6}: missed {result.missed:4d} / {result.num_tasks} "
            f"({100 * result.miss_fraction:.1f}%)  "
            f"[late {result.late}, discarded {result.discarded}, "
            f"energy cutoff {result.energy_cutoff}]  "
            f"energy used {100 * result.energy_utilization():.0f}% of budget"
        )
    print("\nFiltering adds energy- and robustness-awareness to the same "
          "heuristic — the paper's central result.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2011)
