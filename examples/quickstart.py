#!/usr/bin/env python
"""Quickstart: simulate one trial of the paper's environment.

Builds the Section VI environment (heterogeneous 8-node cluster, CVB
execution-time pmfs, bursty arrivals, energy budget), runs the paper's
best policy (Lightest Load with energy + robustness filtering) against
the unfiltered baseline, and prints the outcome.

With an output directory, the run is *observed*: a JSONL event trace,
a metrics dump and a run manifest land there, and every artifact can be
inspected later with ``repro inspect-manifest``.

Run:  python examples/quickstart.py [seed] [outdir]
"""

import pathlib
import sys
from dataclasses import replace

from repro import SimulationConfig, build_trial_system
from repro.experiments.calibrate import subscription_report
from repro.experiments.runner import TrialPlan, VariantSpec
from repro.io.results_io import save_json
from repro.obs.manifest import manifest_for_results, save_manifest
from repro.obs.sinks import JsonlSink, MetricsRegistry


def main(seed: int = 2011, outdir: "str | None" = None, num_tasks: int = 500) -> None:
    # A half-size workload keeps the demo under ~10 s on one core; drop
    # the with_num_tasks(...) override for the paper's full 1,000-task
    # trials.
    config = SimulationConfig(seed=seed)
    config = replace(config, workload=config.workload.with_num_tasks(num_tasks))
    system = build_trial_system(config)

    print("=== Environment ===")
    print(system.cluster.describe())
    rep = subscription_report(system)
    print(
        f"\nburst utilization {rep.fast_utilization:.2f}x capacity, "
        f"lull utilization {rep.slow_utilization:.2f}x, "
        f"budget {system.budget / 1e6:.1f} MJ "
        f"({rep.budget_per_task / 1e3:.0f} kJ per task)"
    )

    out = pathlib.Path(outdir) if outdir else None
    metrics = MetricsRegistry() if out else None
    trace_sink = JsonlSink(out / "quickstart_trace.jsonl") if out else None
    sinks = (trace_sink,) if trace_sink else ()

    print("\n=== Policies ===")
    results = {}
    for variant in ("none", "en+rob"):
        spec = VariantSpec("LL", variant)
        result = TrialPlan(
            system=system, spec=spec, metrics=metrics, sinks=sinks
        ).run()
        results[spec.label] = [result]
        print(
            f"LL/{variant:>6}: missed {result.missed:4d} / {result.num_tasks} "
            f"({100 * result.miss_fraction:.1f}%)  "
            f"[late {result.late}, discarded {result.discarded}, "
            f"energy cutoff {result.energy_cutoff}]  "
            f"energy used {100 * result.energy_utilization():.0f}% of budget"
        )
    print("\nFiltering adds energy- and robustness-awareness to the same "
          "heuristic — the paper's central result.")

    if out and trace_sink and metrics:
        trace_sink.close()
        save_json(metrics.to_dict(), out / "quickstart_metrics.json")
        manifest = manifest_for_results(results, config, base_seed=seed, num_trials=1)
        save_manifest(manifest, out / "quickstart.manifest.json")
        print(
            f"\nwrote {out}/quickstart_trace.jsonl ({trace_sink.count} events), "
            f"quickstart_metrics.json and quickstart.manifest.json\n"
            f"inspect with: repro inspect-manifest {out}/quickstart.manifest.json "
            f"--trace {out}/quickstart_trace.jsonl"
        )


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 2011,
        sys.argv[2] if len(sys.argv) > 2 else None,
    )
