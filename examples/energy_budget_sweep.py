#!/usr/bin/env python
"""How tight must the energy constraint be before filtering matters?

Sweeps the budget multiplier (1.0 = the paper's "energy for one thousand
average tasks") and compares an energy-oblivious policy (MECT, no
filters) against the filtered LL policy on paired trials.  With a loose
budget both are equivalent; as the constraint tightens, the unfiltered
policy falls off a cliff — it burns P0 energy early and forfeits the
late burst.

Run:  python examples/energy_budget_sweep.py
"""

from dataclasses import replace

from repro import SimulationConfig
from repro.experiments.runner import VariantSpec
from repro.experiments.sweep import budget_sweep

BUDGET_MULTS = (0.7, 0.85, 1.0, 1.15, 1.3, 1.6)
TRIALS = 3
TASKS = 400
SPECS = (VariantSpec("MECT", "none"), VariantSpec("LL", "en+rob"))


def main() -> None:
    config = SimulationConfig(seed=1000)
    config = replace(config, workload=config.workload.with_num_tasks(TASKS))
    sweep = budget_sweep(BUDGET_MULTS, SPECS, config, num_trials=TRIALS)
    print(sweep.table(num_tasks=TASKS))
    print(
        f"\nMedians over {TRIALS} paired trials. The gap between columns is "
        "the value of energy-aware filtering; it closes as the budget loosens."
    )


if __name__ == "__main__":
    main()
