#!/usr/bin/env python
"""Does heterogeneity change which policy wins?

The CVB parameters V_task and V_mach control how much task types and
machines differ (the paper fixes both at 0.25).  This example rebuilds
the environment at low and high heterogeneity and reruns the head-to-head
between the four filtered heuristics, exercising the claim that the
*filters*, not the heuristic, drive performance across regimes.

Run:  python examples/heterogeneity_study.py
"""

from dataclasses import replace

import numpy as np

from repro import SimulationConfig, build_trial_system
from repro.experiments.runner import TrialPlan, VariantSpec
from repro.heuristics.registry import HEURISTICS

REGIMES = {
    "low het  (V=0.10)": (0.10, 0.10),
    "paper    (V=0.25)": (0.25, 0.25),
    "high het (V=0.45)": (0.45, 0.45),
}
TRIALS = 3


def main() -> None:
    header = f"{'regime':>18} " + " ".join(f"{h + '/en+rob':>14}" for h in HEURISTICS)
    print(header)
    for label, (v_task, v_mach) in REGIMES.items():
        row = [f"{label:>18}"]
        for heuristic in HEURISTICS:
            misses = []
            for trial in range(TRIALS):
                config = SimulationConfig(seed=500 + trial)
                config = replace(
                    config,
                    workload=replace(
                        config.workload.with_num_tasks(400),
                        v_task=v_task,
                        v_mach=v_mach,
                    ),
                )
                system = build_trial_system(config)
                result = TrialPlan(
                    system=system, spec=VariantSpec(heuristic, "en+rob")
                ).run()
                misses.append(result.missed)
            row.append(f"{float(np.median(misses)):14.1f}")
        print(" ".join(row))
    print(
        "\nMedian missed deadlines out of 400 over "
        f"{TRIALS} trials per cell. Higher heterogeneity widens the spread "
        "of assignment quality, increasing the payoff of informed mapping."
    )


if __name__ == "__main__":
    main()
