#!/usr/bin/env python
"""What does the paper's immediate-mode constraint cost?

The paper maps every task the instant it arrives, irrevocably (Section
III-B).  Batch mode defers commitment: tasks wait in a central pool and
are placed only when a core can actually take them, with full knowledge
of everything that arrived in the meantime.  This example runs both
modes over the same trials.

Run:  python examples/batch_vs_immediate.py
"""

from dataclasses import replace

import numpy as np

from repro import SimulationConfig, build_trial_system
from repro.extensions import run_batch_trial
from repro.filters import build_filter_chain
from repro.heuristics import LightestLoad, MinimumExpectedCompletionTime
from repro.sim.engine import run_trial

TRIALS = 3
TASKS = 400


def main() -> None:
    rows: dict[str, list[int]] = {
        "immediate MECT/en+rob": [],
        "immediate LL/en+rob": [],
        "batch Min-Min/en+rob": [],
        "batch Max-Min/en+rob": [],
    }
    for trial in range(TRIALS):
        config = SimulationConfig(seed=4000 + trial)
        config = replace(config, workload=config.workload.with_num_tasks(TASKS))
        system = build_trial_system(config)
        rows["immediate MECT/en+rob"].append(
            run_trial(
                system, MinimumExpectedCompletionTime(), build_filter_chain("en+rob")
            ).missed
        )
        rows["immediate LL/en+rob"].append(
            run_trial(system, LightestLoad(), build_filter_chain("en+rob")).missed
        )
        rows["batch Min-Min/en+rob"].append(
            run_batch_trial(system, "min-min", build_filter_chain("en+rob")).missed
        )
        rows["batch Max-Min/en+rob"].append(
            run_batch_trial(system, "max-min", build_filter_chain("en+rob")).missed
        )

    print(f"{'policy':>24} {'median missed':>14}  (of {TASKS}, {TRIALS} trials)")
    for name, misses in sorted(rows.items(), key=lambda kv: np.median(kv[1])):
        print(f"{name:>24} {float(np.median(misses)):14.1f}")
    print(
        "\nBatch mode commits at the last responsible moment: during bursts "
        "it avoids stacking tasks behind slow commitments, which is exactly "
        "the information advantage the paper's immediate-mode setting gives up."
    )


if __name__ == "__main__":
    main()
